"""Bus access optimisation: configurations, cost, and the search runtime.

Public entry points
-------------------
:func:`optimise`
    The unified entry point: dispatch any registered strategy by name
    (``"bbc"``, ``"obc-cf"``, ``"obc-ee"``, ``"sa"``, ``"ga"``, plus
    anything added via :func:`register_strategy`) through the search
    runtime.  ``optimise(system, "sa", SAOptions(seed=7))``.
:func:`optimise_bbc`, :func:`optimise_obc`, :func:`optimise_sa`,
:func:`optimise_ga`
    The paper's bus-access optimisers, as direct calls.  Every one is a
    proposal strategy executed by the
    :class:`~repro.core.runtime.SearchDriver` (evaluation, budgets,
    trace, deterministic selection) and returns an
    :class:`OptimisationResult` with the best
    :class:`~repro.analysis.AnalysisResult`, the exact analysis count,
    cache-hit accounting and the search trace.  At a fixed seed every
    strategy is byte-identical serial vs. parallel.
:func:`campaign_matrix` / :func:`run_campaign`
    The campaign layer: declarative (system x strategy x options) job
    matrices with JSON-persisted results and resumable checkpoints.
:func:`fabric_submit` / :func:`fabric_work` / :func:`fabric_collect`
    The distributed fabric (:mod:`repro.core.fabric`): the same job
    matrices drained by any number of crash-tolerant worker processes
    leasing jobs from a shared directory.
:class:`StrategyOptions`
    Common base of the per-strategy option records (:class:`SAOptions`,
    :class:`GAOptions`); carries the evaluator knobs (``bus``) and the
    driver budgets (``max_seconds`` / ``max_evaluations``).
:class:`BusOptimisationOptions`
    The shared evaluator/analysis knob record; every field documents
    its default and its determinism guarantee (notably
    ``parallel_workers``, the opt-in process pool, and
    ``obc_chunk_size``, the chunked OBC outer loop).
:class:`Evaluator`
    The evaluation machinery behind the driver: a warm
    :class:`~repro.analysis.AnalysisContext`, an LRU result cache and
    the parallel pool behind ``analyse_many``.  A context manager --
    the pool is released on every exit path.
:class:`FlexRayConfig`
    The immutable design variable; derive neighbours with the
    ``with_*`` helpers.

Exports are resolved lazily (PEP 562): the timing-analysis layer imports
``repro.core.config`` while the optimisers in this package import the
analysis layer, so eager re-exports here would create an import cycle.
"""

from importlib import import_module
from typing import TYPE_CHECKING

_EXPORTS = {
    "BusOptimisationOptions": "repro.core.search",
    "CampaignJob": "repro.core.campaign",
    "CampaignJobFailure": "repro.core.campaign",
    "CampaignOptions": "repro.core.campaign",
    "CampaignReport": "repro.core.campaign",
    "CandidateBatch": "repro.core.runtime",
    "CostBreakdown": "repro.core.cost",
    "Evaluator": "repro.core.search",
    "FabricSpec": "repro.core.fabric",
    "FabricStatus": "repro.core.fabric",
    "FlexRayConfig": "repro.core.config",
    "WorkerReport": "repro.core.fabric",
    "GAOptions": "repro.core.ga",
    "NewtonInterpolator": "repro.core.curvefit",
    "OptimisationResult": "repro.core.result",
    "MappingOptions": "repro.core.mapping",
    "MappingResult": "repro.core.mapping",
    "SAOptions": "repro.core.sa",
    "SearchDriver": "repro.core.runtime",
    "SearchPoint": "repro.core.result",
    "SearchStrategy": "repro.core.runtime",
    "StrategyOptions": "repro.core.strategies",
    "StrategySpec": "repro.core.strategies",
    "assign_frame_ids": "repro.core.frameid",
    "available_strategies": "repro.core.strategies",
    "basic_configuration": "repro.core.bbc",
    "campaign_matrix": "repro.core.campaign",
    "cost_function": "repro.core.cost",
    "curvefit_dyn_length": "repro.core.dynlen",
    "dyn_segment_bounds": "repro.core.search",
    "ensure_writable_dir": "repro.core.campaign",
    "ensure_writable_file": "repro.core.campaign",
    "exhaustive_dyn_length": "repro.core.dynlen",
    "fabric_collect": "repro.core.fabric",
    "fabric_events": "repro.core.fabric",
    "fabric_status": "repro.core.fabric",
    "fabric_submit": "repro.core.fabric",
    "fabric_work": "repro.core.fabric",
    "get_strategy": "repro.core.strategies",
    "load_fabric": "repro.core.fabric",
    "message_criticalities": "repro.core.frameid",
    "min_static_slot": "repro.core.search",
    "optimise": "repro.core.strategies",
    "optimise_bbc": "repro.core.bbc",
    "optimise_ga": "repro.core.ga",
    "optimise_mapping": "repro.core.mapping",
    "optimise_obc": "repro.core.obc",
    "optimise_sa": "repro.core.sa",
    "quota_slot_assignment": "repro.core.search",
    "register_strategy": "repro.core.strategies",
    "remap_task": "repro.core.mapping",
    "run_campaign": "repro.core.campaign",
    "spread_points": "repro.core.curvefit",
    "sweep_lengths": "repro.core.search",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    """Resolve re-exported names on first access."""
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    return getattr(import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - static typing aid only
    from repro.core.bbc import basic_configuration, optimise_bbc
    from repro.core.campaign import (
        CampaignJob,
        CampaignJobFailure,
        CampaignOptions,
        CampaignReport,
        campaign_matrix,
        ensure_writable_dir,
        ensure_writable_file,
        run_campaign,
    )
    from repro.core.fabric import (
        FabricSpec,
        FabricStatus,
        WorkerReport,
        fabric_collect,
        fabric_events,
        fabric_status,
        fabric_submit,
        fabric_work,
        load_fabric,
    )
    from repro.core.config import FlexRayConfig
    from repro.core.cost import CostBreakdown, cost_function
    from repro.core.curvefit import NewtonInterpolator, spread_points
    from repro.core.dynlen import curvefit_dyn_length, exhaustive_dyn_length
    from repro.core.frameid import assign_frame_ids, message_criticalities
    from repro.core.ga import GAOptions, optimise_ga
    from repro.core.mapping import MappingOptions, MappingResult, optimise_mapping
    from repro.core.obc import optimise_obc
    from repro.core.result import OptimisationResult, SearchPoint
    from repro.core.runtime import CandidateBatch, SearchDriver, SearchStrategy
    from repro.core.sa import SAOptions, optimise_sa
    from repro.core.search import (
        BusOptimisationOptions,
        Evaluator,
        dyn_segment_bounds,
        min_static_slot,
        quota_slot_assignment,
        sweep_lengths,
    )
    from repro.core.strategies import (
        StrategyOptions,
        StrategySpec,
        available_strategies,
        get_strategy,
        optimise,
        register_strategy,
    )
