"""FlexRay bus configuration -- the design variable of the paper.

A :class:`FlexRayConfig` bundles the six design decisions of Section 6:

1. the length of a static slot (``gd_static_slot``),
2. the number of static slots (``len(static_slots)``),
3. the assignment of static slots to nodes (``static_slots``),
4. the length of the dynamic segment (``n_minislots`` x ``gd_minislot``),
5. the assignment of dynamic slots to nodes, and
6. the FrameID of each dynamic message (``frame_ids``; the slot-to-node
   assignment is implied, because the slot of FrameID f belongs to the
   node that sends the message(s) with FrameID f).

Configurations are immutable; the optimisers derive neighbours with the
``with_*`` helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.flexray import params
from repro.model.message import Message
from repro.model.system import System
from repro.model.times import ceil_div


@dataclass(frozen=True)
class FlexRayConfig:
    """Immutable FlexRay bus-cycle configuration.

    Parameters
    ----------
    static_slots:
        Node name per static slot; index i holds the owner of ST slot
        i + 1 (slots are 1-based on the bus).
    gd_static_slot:
        Length of every static slot, in macroticks.
    n_minislots:
        Number of minislots in the dynamic segment (may be 0 for a purely
        static cycle).
    frame_ids:
        Mapping from DYN message name to its FrameID (1-based dynamic
        slot number).  Messages of the same node may share a FrameID.
    gd_minislot:
        Length of one minislot in macroticks.
    bits_per_mt:
        Bus speed: payload bits transferred per macrotick (8 by default,
        i.e. one byte per macrotick -- see :mod:`repro.flexray.params`).
    frame_overhead_bytes:
        Per-frame protocol overhead added to every frame transmission.
    """

    static_slots: Tuple[str, ...]
    gd_static_slot: int
    n_minislots: int
    frame_ids: Mapping[str, int] = field(default_factory=dict)
    gd_minislot: int = params.DEFAULT_GD_MINISLOT
    bits_per_mt: int = params.DEFAULT_BITS_PER_MT
    frame_overhead_bytes: int = params.DEFAULT_FRAME_OVERHEAD_BYTES

    def __post_init__(self) -> None:
        object.__setattr__(self, "static_slots", tuple(self.static_slots))
        object.__setattr__(self, "frame_ids", dict(self.frame_ids))
        if not self.static_slots and self.n_minislots == 0:
            raise ConfigurationError("bus cycle must contain at least one segment")
        if len(self.static_slots) > params.MAX_STATIC_SLOTS:
            raise ConfigurationError(
                f"{len(self.static_slots)} static slots exceed the protocol limit "
                f"of {params.MAX_STATIC_SLOTS}"
            )
        if self.static_slots:
            if not (1 <= self.gd_static_slot <= params.MAX_STATIC_SLOT_MT):
                raise ConfigurationError(
                    f"gd_static_slot={self.gd_static_slot} outside "
                    f"[1, {params.MAX_STATIC_SLOT_MT}]"
                )
            for node in self.static_slots:
                if not node:
                    raise ConfigurationError("static slot owner must be non-empty")
        elif self.gd_static_slot < 0:
            raise ConfigurationError("gd_static_slot must be >= 0")
        if not (0 <= self.n_minislots <= params.MAX_MINISLOTS):
            raise ConfigurationError(
                f"n_minislots={self.n_minislots} outside [0, {params.MAX_MINISLOTS}]"
            )
        if self.gd_minislot < 1:
            raise ConfigurationError("gd_minislot must be >= 1 macrotick")
        if self.bits_per_mt < 1:
            raise ConfigurationError("bits_per_mt must be >= 1")
        if self.frame_overhead_bytes < 0:
            raise ConfigurationError("frame_overhead_bytes must be >= 0")
        for name, fid in self.frame_ids.items():
            if not isinstance(fid, int) or isinstance(fid, bool) or fid < 1:
                raise ConfigurationError(
                    f"FrameID of message {name!r} must be a positive int, got {fid!r}"
                )
            if fid > max(self.n_minislots, 0):
                raise ConfigurationError(
                    f"FrameID {fid} of message {name!r} cannot fit in a dynamic "
                    f"segment of {self.n_minislots} minislots"
                )
        # Geometry is read on every hot-path iteration: precompute once
        # (the dataclass is frozen, so the derived values never go stale;
        # ``replace()`` re-runs this initialiser).
        st_bus = len(self.static_slots) * self.gd_static_slot
        dyn_bus = self.n_minislots * self.gd_minislot
        object.__setattr__(self, "_st_bus", st_bus)
        object.__setattr__(self, "_dyn_bus", dyn_bus)
        object.__setattr__(self, "_gd_cycle", st_bus + dyn_bus)
        if self.gd_cycle > params.MAX_CYCLE_MT:
            raise ConfigurationError(
                f"gd_cycle={self.gd_cycle} MT exceeds the protocol maximum "
                f"of {params.MAX_CYCLE_MT} MT (16 ms)"
            )
        if self.gd_cycle <= 0:
            raise ConfigurationError("gd_cycle must be positive")

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def n_static_slots(self) -> int:
        """Number of static slots (``gdNumberOfStaticSlots``)."""
        return len(self.static_slots)

    @property
    def st_bus(self) -> int:
        """Length of the static segment in macroticks."""
        return self._st_bus

    @property
    def dyn_bus(self) -> int:
        """Length of the dynamic segment in macroticks."""
        return self._dyn_bus

    @property
    def gd_cycle(self) -> int:
        """Length of the whole communication cycle in macroticks."""
        return self._gd_cycle

    # ------------------------------------------------------------------
    # message metrics
    # ------------------------------------------------------------------
    def message_ct(self, message: Message) -> int:
        """Transmission time C_m of *message* in macroticks (Eq. (1))."""
        total_bytes = message.size + self.frame_overhead_bytes
        return ceil_div(total_bytes * 8, self.bits_per_mt)

    def minislots_needed(self, message: Message) -> int:
        """Number of minislots the DYN frame of *message* occupies."""
        return ceil_div(self.message_ct(message), self.gd_minislot)

    def frame_id_of(self, message_name: str) -> int:
        """FrameID assigned to DYN message *message_name*."""
        try:
            return self.frame_ids[message_name]
        except KeyError:
            raise ConfigurationError(
                f"no FrameID assigned to DYN message {message_name!r}"
            ) from None

    # ------------------------------------------------------------------
    # slot ownership
    # ------------------------------------------------------------------
    def st_slots_of(self, node: str) -> Tuple[int, ...]:
        """1-based static slot numbers owned by *node*."""
        return tuple(
            i + 1 for i, owner in enumerate(self.static_slots) if owner == node
        )

    def dyn_slots_of(self, node: str, system: System) -> Tuple[int, ...]:
        """Sorted 1-based dynamic slot numbers (FrameIDs) used by *node*."""
        fids = {
            fid
            for name, fid in self.frame_ids.items()
            if system.sender_node(system.application.message(name)) == node
        }
        return tuple(sorted(fids))

    def p_latest_tx(self, node: str, system: System) -> Optional[int]:
        """``pLatestTx`` of *node*: the last minislot counter value at which
        the node may still start a dynamic transmission.

        Fixed per node at design time from the node's largest DYN frame
        (Section 3 of the paper).  ``None`` when the node sends no DYN
        message.  A value < 1 means the node's largest frame does not fit
        the dynamic segment at all.
        """
        largest = 0
        for m in system.messages_sent_by(node):
            if m.is_dynamic:
                largest = max(largest, self.minislots_needed(m))
        if largest == 0:
            return None
        return self.n_minislots - largest + 1

    # ------------------------------------------------------------------
    # semantic validation against a system
    # ------------------------------------------------------------------
    def validate_for(self, system: System) -> None:
        """Raise :class:`ConfigurationError` unless the configuration is a
        legal bus setup for *system*:

        * every node appearing in ``static_slots`` exists,
        * every ST-sending node owns at least one static slot,
        * the static slot accommodates the largest ST message,
        * every DYN message has a FrameID,
        * messages sharing a FrameID originate from the same node,
        * every DYN frame fits the dynamic segment (pLatestTx >= 1).
        """
        app = system.application
        nodes = set(system.nodes)
        for owner in self.static_slots:
            if owner not in nodes:
                raise ConfigurationError(
                    f"static slot owner {owner!r} is not a node of the system"
                )
        slot_owners = set(self.static_slots)
        max_st_ct = 0
        for m in app.st_messages():
            sender = system.sender_node(m)
            if sender not in slot_owners:
                raise ConfigurationError(
                    f"node {sender!r} sends ST message {m.name!r} but owns no "
                    "static slot"
                )
            max_st_ct = max(max_st_ct, self.message_ct(m))
        if max_st_ct > self.gd_static_slot:
            raise ConfigurationError(
                f"gd_static_slot={self.gd_static_slot} cannot fit the largest ST "
                f"frame ({max_st_ct} MT)"
            )
        fid_owner: Dict[int, str] = {}
        for m in app.dyn_messages():
            if m.name not in self.frame_ids:
                raise ConfigurationError(
                    f"DYN message {m.name!r} has no FrameID in this configuration"
                )
            sender = system.sender_node(m)
            fid = self.frame_ids[m.name]
            if fid in fid_owner and fid_owner[fid] != sender:
                raise ConfigurationError(
                    f"FrameID {fid} is shared by nodes {fid_owner[fid]!r} and "
                    f"{sender!r}; a dynamic slot belongs to exactly one node"
                )
            fid_owner[fid] = sender
        for name in self.frame_ids:
            app.message(name)  # raises ModelError -> surfaced to the caller
        for node in system.dyn_sender_nodes():
            latest = self.p_latest_tx(node, system)
            if latest is not None and latest < 1:
                raise ConfigurationError(
                    f"the largest DYN frame of node {node!r} does not fit a "
                    f"dynamic segment of {self.n_minislots} minislots"
                )
            for fid in self.dyn_slots_of(node, system):
                if latest is not None and fid > latest:
                    raise ConfigurationError(
                        f"FrameID {fid} of node {node!r} exceeds its pLatestTx "
                        f"({latest}); the frame could never be sent"
                    )

    # ------------------------------------------------------------------
    # derivation helpers for optimisers
    # ------------------------------------------------------------------
    def with_dyn_length(self, n_minislots: int) -> "FlexRayConfig":
        """Copy with a different dynamic segment length."""
        return replace(self, n_minislots=n_minislots)

    def with_static(
        self, static_slots: Tuple[str, ...], gd_static_slot: int
    ) -> "FlexRayConfig":
        """Copy with a different static segment structure."""
        return replace(
            self, static_slots=tuple(static_slots), gd_static_slot=gd_static_slot
        )

    def with_frame_ids(self, frame_ids: Mapping[str, int]) -> "FlexRayConfig":
        """Copy with a different FrameID assignment."""
        return replace(self, frame_ids=dict(frame_ids))

    def static_key(self) -> tuple:
        """Hashable identity of the static segment and bus parameters.

        Everything the static schedule construction depends on *except*
        the cycle length: configurations sharing this key (plus
        ``gd_cycle`` when the application sends ST messages) produce
        byte-identical schedule tables, which is what the incremental
        analysis engine keys its per-static-segment cache on.
        """
        return (
            self.static_slots,
            self.gd_static_slot,
            self.gd_minislot,
            self.bits_per_mt,
            self.frame_overhead_bytes,
        )

    def cache_key(self) -> tuple:
        """Hashable identity of the full configuration (``frame_ids`` is a
        dict, so the dataclass itself is unhashable)."""
        return self.static_key() + (
            self.n_minislots,
            tuple(sorted(self.frame_ids.items())),
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"FlexRayConfig(ST: {self.n_static_slots} x {self.gd_static_slot} MT, "
            f"DYN: {self.n_minislots} x {self.gd_minislot} MT, "
            f"gdCycle={self.gd_cycle} MT)"
        )
