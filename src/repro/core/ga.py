"""Genetic-algorithm baseline (related work [5] of the paper).

Ding et al., "A GA-Based Scheduling Method for FlexRay Systems"
(EMSOFT 2005) -- the approach the paper positions itself against (it
only handles the static segment).  This module provides a GA over the
*full* design space of Section 6 so it can serve as a second
population-based reference point next to SA: tournament selection,
structure crossover, and mutation through the SA neighbourhood moves.

Each generation is one :class:`~repro.core.runtime.CandidateBatch`:
the RNG is never consumed during evaluation, so the search driver can
fan a generation out over the parallel pool and the population
trajectory is byte-identical to a serial run.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import FlexRayConfig
from repro.core.result import OptimisationResult
from repro.core.runtime import (
    CandidateBatch,
    Proposals,
    SearchDriver,
    SearchStrategy,
)
from repro.core.sa import _initial_config, _neighbour
from repro.core.search import BusOptimisationOptions, dyn_segment_bounds
from repro.core.strategies import StrategyOptions, StrategySpec
from repro.errors import ConfigurationError
from repro.model.system import System


@dataclass(frozen=True)
class GAOptions(StrategyOptions):
    """Population and budget of the genetic algorithm.

    Extends :class:`~repro.core.strategies.StrategyOptions` (evaluator
    knobs + driver budgets); the inherited ``max_seconds`` doubles as
    the legacy generation-loop budget.
    """

    population: int = 12
    generations: int = 12
    tournament: int = 3
    crossover_rate: float = 0.7
    mutation_rate: float = 0.6
    elite: int = 2
    seed: int = 2005


class GAStrategy(SearchStrategy):
    """Generational evolution as a proposal strategy."""

    algorithm = "GA"

    def __init__(self, options: GAOptions = None):
        super().__init__(options if options is not None else GAOptions())

    def proposals(self, system: System) -> Proposals:
        ga_options = self.options
        bus = ga_options.bus_options()
        start = time.perf_counter()
        rng = random.Random(ga_options.seed)

        population = _initial_population(
            system, bus, rng, ga_options.population
        )
        # Whole generations are evaluated as one batch: the RNG is never
        # consumed during evaluation, so the parallel pool produces the
        # exact population trajectory of a serial run.
        results = yield CandidateBatch(tuple(population))
        scored = list(zip(results, population))

        for _ in range(ga_options.generations):
            if (
                ga_options.max_seconds is not None
                and time.perf_counter() - start > ga_options.max_seconds
            ):
                break
            next_gen: List[FlexRayConfig] = [
                cfg for _, cfg in sorted(scored, key=lambda rc: rc[0].cost_value)[
                    : ga_options.elite
                ]
            ]
            while len(next_gen) < ga_options.population:
                parent_a = _tournament(scored, rng, ga_options.tournament)
                parent_b = _tournament(scored, rng, ga_options.tournament)
                child = parent_a
                if rng.random() < ga_options.crossover_rate:
                    child = _crossover(system, parent_a, parent_b, bus, rng)
                if child is None:
                    child = parent_a
                if rng.random() < ga_options.mutation_rate:
                    mutated = _neighbour(system, child, bus, rng)
                    if mutated is not None:
                        child = mutated
                next_gen.append(child)
            results = yield CandidateBatch(tuple(next_gen))
            scored = list(zip(results, next_gen))
        return None  # driver default: lowest-cost feasible individual


def run_ga(system: System, ga_options: GAOptions) -> OptimisationResult:
    """Registry runner for the GA."""
    return SearchDriver(system, GAStrategy(ga_options)).run()


STRATEGY_SPEC = StrategySpec(
    name="ga",
    summary="Genetic algorithm over the full Section 6 design space",
    options_type=GAOptions,
    runner=run_ga,
)


def optimise_ga(
    system: System,
    options: BusOptimisationOptions = None,
    ga_options: GAOptions = None,
) -> OptimisationResult:
    """Evolve bus configurations; returns the best analysed individual."""
    ga_options = ga_options if ga_options is not None else GAOptions()
    return run_ga(system, ga_options.with_bus(options))


def _initial_population(
    system: System,
    options: BusOptimisationOptions,
    rng: random.Random,
    size: int,
) -> List[FlexRayConfig]:
    """BBC-shaped individuals with randomised DYN segment lengths.

    Individuals are deduplicated by configuration identity: when
    ``_neighbour`` repeatedly returns ``None`` (tiny design spaces) the
    naive loop seeds the whole population with one config and the first
    generation burns its evaluation budget on cache hits.  Duplicate
    draws are retried within a bounded budget before being accepted, so
    the population stays diverse yet the loop always terminates.
    """
    base = _initial_config(system, options)
    population = [base]
    seen = {base.cache_key()}
    lo, hi = dyn_segment_bounds(system, base.st_bus, options)
    attempts_left = 16 * size
    while len(population) < size:
        cfg = base
        if hi >= lo and hi > 0:
            cfg = base.with_dyn_length(rng.randint(lo, hi))
        mutated = _neighbour(system, cfg, options, rng)
        if mutated is not None:
            cfg = mutated
        key = cfg.cache_key()
        attempts_left -= 1
        if key in seen and attempts_left > 0:
            continue
        seen.add(key)
        population.append(cfg)
    return population


def _tournament(scored, rng: random.Random, k: int) -> FlexRayConfig:
    """Best of *k* random individuals."""
    picks = [scored[rng.randrange(len(scored))] for _ in range(max(1, k))]
    return min(picks, key=lambda rc: rc[0].cost_value)[1]


def _crossover(
    system: System,
    a: FlexRayConfig,
    b: FlexRayConfig,
    options: BusOptimisationOptions,
    rng: random.Random,
) -> Optional[FlexRayConfig]:
    """Structure crossover: static segment from one parent, dynamic
    segment length from the other, FrameIDs from a random parent choice
    per message (falling back to parent *a*'s map when the mix would be
    protocol-illegal)."""
    static_parent, dyn_parent = (a, b) if rng.random() < 0.5 else (b, a)
    frame_ids = {}
    for name in a.frame_ids:
        source = a if rng.random() < 0.5 else b
        frame_ids[name] = source.frame_ids.get(name, a.frame_ids[name])
    try:
        child = FlexRayConfig(
            static_slots=static_parent.static_slots,
            gd_static_slot=static_parent.gd_static_slot,
            n_minislots=dyn_parent.n_minislots,
            frame_ids=frame_ids,
            gd_minislot=a.gd_minislot,
            bits_per_mt=a.bits_per_mt,
            frame_overhead_bytes=a.frame_overhead_bytes,
        )
        child.validate_for(system)
    except ConfigurationError:
        try:
            child = FlexRayConfig(
                static_slots=static_parent.static_slots,
                gd_static_slot=static_parent.gd_static_slot,
                n_minislots=dyn_parent.n_minislots,
                frame_ids=dict(a.frame_ids),
                gd_minislot=a.gd_minislot,
                bits_per_mt=a.bits_per_mt,
                frame_overhead_bytes=a.frame_overhead_bytes,
            )
        except ConfigurationError:
            return None
    return child
