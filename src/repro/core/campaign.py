"""Campaign orchestration: declarative job matrices over the registry.

A *campaign* is a (system x strategy x options) job matrix executed
through the unified search runtime: every job dispatches by strategy
name (:mod:`repro.core.strategies`), runs on its own
:class:`~repro.core.runtime.SearchDriver` (so evaluator pools are
always released, even when a job raises), and -- when a checkpoint
directory is given -- persists its full
:class:`~repro.core.result.OptimisationResult` (trace included) as
schema-versioned JSON through :mod:`repro.io.serialization`.

Checkpoints make campaigns *resumable*: re-running the same campaign
over the same directory loads finished jobs from disk instead of
re-optimising, so an interrupted paper-scale sweep (the Fig. 9 shard
workers, ``benchmarks/fig9_shard.py``, ride this layer) continues where
it stopped.  Every checkpoint records fingerprints of the job's
strategy options and system, so a *redefined* job -- same id, but new
budgets, a different suite seed, an edited system JSON -- is detected
and re-run instead of silently answered with the stale result.  A
checkpoint that does not match its job *identity* (foreign file under
the same name) raises :class:`~repro.errors.CampaignError`; a
half-written or unreadable checkpoint is *quarantined* -- moved aside
under a ``.quarantined.N`` suffix for post-mortem inspection -- and the
job re-run.

The runtime is *fault-tolerant*: a job that raises (or exceeds the
optional per-job wall-clock timeout) is retried up to ``max_retries``
times with jittered exponential backoff, and a job that still fails is
recorded in :attr:`CampaignReport.failures` instead of aborting the
rest of the matrix -- a long fault sweep survives one bad cell.
Campaign-*definition* problems (unknown systems, duplicate or foreign
checkpoints, an unwritable checkpoint directory) still raise up front:
they mean the campaign itself is wrong, not one job.

::

    from repro.core.campaign import campaign_matrix, run_campaign
    jobs = campaign_matrix(systems, ["bbc", ("sa", SAOptions(seed=7))])
    report = run_campaign(systems, jobs, checkpoint_dir="out/checkpoints")
    report.result_for("cruise", "bbc").describe()
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import threading
import time
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.core.result import OptimisationResult
from repro.core.strategies import (
    StrategyOptions,
    get_strategy,
    optimise,
)
from repro.errors import CampaignError, SerializationError
from repro.io.serialization import (
    result_from_dict,
    result_to_dict,
    system_fingerprint,
)
from repro.model.system import System

#: A strategy reference in a matrix: a registry name, or (name, options).
StrategyRef = Union[str, Tuple[str, Optional[StrategyOptions]]]


@dataclass(frozen=True)
class CampaignOptions:
    """Execution knobs of one :func:`run_campaign` call.

    The fault-tolerance knobs (``job_timeout``, ``max_retries``,
    ``retry_backoff``, ``retry_seed``) are documented on
    :func:`run_campaign`; ``campaign_workers`` adds *job-level*
    parallelism: ``N > 1`` runs up to N jobs of the matrix concurrently
    on worker threads.  Jobs are independent (separate systems,
    separate checkpoint files), so results, checkpoints and the final
    :class:`CampaignReport` are identical to a serial run -- the report
    lists ``executed``/``resumed`` in matrix order regardless of
    completion order, and only the ``progress`` callback observes the
    interleaving.  Worker threads overlap wall-clock wherever a job
    releases the GIL or blocks -- per-strategy evaluation process pools
    (``parallel_workers``), per-job timeouts, checkpoint I/O; for
    process-level parallelism across hosts use the distributed fabric
    (:mod:`repro.core.fabric`), whose workers are whole processes.
    """

    job_timeout: Optional[float] = None
    max_retries: int = 0
    retry_backoff: float = 0.5
    retry_seed: int = 0
    campaign_workers: int = 1

    def __post_init__(self):
        if self.max_retries < 0:
            raise CampaignError(
                f"max_retries={self.max_retries} must be >= 0"
            )
        if self.campaign_workers < 1:
            raise CampaignError(
                f"campaign_workers={self.campaign_workers} must be >= 1"
            )


@dataclass(frozen=True)
class CampaignJob:
    """One (system, strategy, options) cell of a campaign matrix."""

    job_id: str
    system_id: str
    strategy: str
    options: Optional[StrategyOptions] = None


@dataclass(frozen=True)
class CampaignJobFailure:
    """Terminal failure of one campaign job (after all retries)."""

    job_id: str
    kind: str  # "timeout" or "error"
    message: str
    attempts: int

    def describe(self) -> str:
        noun = "timed out" if self.kind == "timeout" else "failed"
        return (
            f"{self.job_id}: {noun} after {self.attempts} attempt(s): "
            f"{self.message}"
        )


@dataclass(frozen=True)
class CampaignReport:
    """Outcome of :func:`run_campaign`.

    ``executed`` lists jobs that actually ran this time; ``resumed``
    lists jobs answered from checkpoints.  Their union plus the ids in
    ``failures``, in job order, is the whole campaign.  ``quarantined``
    lists jobs whose corrupted checkpoint was moved aside (the job
    itself re-ran; see the module docstring).
    """

    results: Mapping[str, OptimisationResult]
    executed: Tuple[str, ...]
    resumed: Tuple[str, ...]
    checkpoint_dir: Optional[str]
    elapsed_seconds: float
    failures: Mapping[str, CampaignJobFailure] = field(default_factory=dict)
    quarantined: Tuple[str, ...] = ()

    @property
    def all_succeeded(self) -> bool:
        """True when every job produced a result."""
        return not self.failures

    def result_for(self, system_id: str, strategy: str) -> OptimisationResult:
        """The result of the (system, strategy) cell; raises when absent."""
        job_id = job_id_for(system_id, strategy)
        try:
            return self.results[job_id]
        except KeyError:
            failure = self.failures.get(job_id)
            if failure is not None:
                raise CampaignError(
                    f"campaign job {failure.describe()}"
                ) from None
            raise CampaignError(
                f"campaign has no job {job_id!r}"
            ) from None


def job_id_for(system_id: str, strategy: str) -> str:
    """The deterministic checkpoint-file stem of a matrix cell."""
    return f"{system_id}__{strategy}"


def _check_identifier(kind: str, value: str) -> str:
    if not value or any(c in value for c in "/\\") or value != value.strip():
        raise CampaignError(f"illegal {kind} {value!r} (must be file-safe)")
    return value


def campaign_matrix(
    systems: Union[Mapping[str, System], Iterable[str]],
    strategies: Iterable[StrategyRef],
    bus=None,
) -> Tuple[CampaignJob, ...]:
    """The cross product of systems and strategies as a job tuple.

    ``systems`` is a ``{system_id: System}`` mapping (or just the ids);
    ``strategies`` mixes bare registry names and ``(name, options)``
    pairs.  ``bus`` optionally overrides the evaluator options of every
    job (:meth:`StrategyOptions.with_bus`), so one preset -- e.g. the
    Fig. 9 laptop budgets with ``parallel_workers`` -- applies across
    the whole matrix.  Every referenced strategy must be registered;
    unknown names fail here, not mid-campaign.
    """
    system_ids = list(systems)
    normalised: List[Tuple[str, Optional[StrategyOptions]]] = []
    for ref in strategies:
        name, options = ref if isinstance(ref, tuple) else (ref, None)
        spec = get_strategy(name)  # raises on unknown names
        if options is None:
            options = spec.options_type()
        options = options.with_bus(bus)
        normalised.append((_check_identifier("strategy name", name), options))
    jobs = []
    seen = set()
    for system_id in system_ids:
        _check_identifier("system id", system_id)
        for name, options in normalised:
            job_id = job_id_for(system_id, name)
            if job_id in seen:
                raise CampaignError(f"duplicate campaign job {job_id!r}")
            seen.add(job_id)
            jobs.append(
                CampaignJob(
                    job_id=job_id,
                    system_id=system_id,
                    strategy=name,
                    options=options,
                )
            )
    return tuple(jobs)


def ensure_writable_dir(path: str, flag: str = "--checkpoint-dir") -> None:
    """Fail fast (with an actionable message) when *path* cannot be
    created or written -- called before any campaign job runs, so a bad
    checkpoint directory costs seconds, not the whole sweep."""
    probe = os.path.join(path, f".write-probe.{os.getpid()}")
    try:
        os.makedirs(path, exist_ok=True)
        with open(probe, "w", encoding="utf-8") as fh:
            fh.write("probe\n")
        os.remove(probe)
    except OSError as exc:
        raise CampaignError(
            f"directory {path!r} is not writable ({exc}); fix its "
            f"permissions or point {flag} somewhere writable"
        ) from exc


def ensure_writable_file(path: str, flag: str = "--output") -> None:
    """Fail fast when the output file *path* cannot be written.

    Probes by opening for append (creating the file if absent, and
    removing a file the probe itself created), so a bad path is caught
    before hours of campaign work produce a result with nowhere to go.
    """
    existed = os.path.exists(path)
    try:
        with open(path, "a", encoding="utf-8"):
            pass
        if not existed:
            os.remove(path)
    except OSError as exc:
        raise CampaignError(
            f"output file {path!r} is not writable ({exc}); create its "
            f"parent directory or point {flag} somewhere writable"
        ) from exc


class _JobTimeout(Exception):
    """Internal: a job exceeded its wall-clock timeout."""


def _run_job(system: System, job: CampaignJob, timeout: Optional[float]):
    """Run one job, raising :class:`_JobTimeout` past *timeout* seconds.

    The timeout runs the job on a daemon thread and abandons it on
    expiry -- the thread may keep consuming CPU until its current
    analysis finishes (Python offers no safe preemption), but the
    campaign moves on.  ``timeout=None`` runs inline with zero overhead.
    """
    if timeout is None:
        return optimise(system, job.strategy, job.options)
    box: dict = {}

    def runner() -> None:
        try:
            box["result"] = optimise(system, job.strategy, job.options)
        except BaseException as exc:  # noqa: BLE001 - relayed to caller
            box["error"] = exc

    thread = threading.Thread(
        target=runner, daemon=True, name=f"campaign-job-{job.job_id}"
    )
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise _JobTimeout(
            f"exceeded the {timeout}s per-job wall-clock timeout"
        )
    if "error" in box:
        raise box["error"]
    return box["result"]


def run_campaign(
    systems: Mapping[str, System],
    jobs: Iterable[CampaignJob],
    checkpoint_dir: Optional[str] = None,
    progress: Optional[Callable[[CampaignJob, OptimisationResult, bool], None]] = None,
    *,
    options: Optional[CampaignOptions] = None,
    job_timeout: Optional[float] = None,
    max_retries: int = 0,
    retry_backoff: float = 0.5,
    retry_seed: int = 0,
) -> CampaignReport:
    """Execute a job matrix, resuming finished jobs from checkpoints.

    Jobs run in matrix order -- sequentially by default, or up to
    ``options.campaign_workers`` at a time on worker threads (results
    and report identical either way; see :class:`CampaignOptions`).
    Per-job parallelism comes from each strategy's own
    ``parallel_workers`` pool; multi-process / multi-host parallelism
    from the distributed fabric (:mod:`repro.core.fabric`).
    ``progress`` is called after every *successful* job with
    ``(job, result, resumed)``.

    Fault tolerance: ``job_timeout`` bounds each attempt's wall-clock
    seconds (see :func:`_run_job` for the abandonment caveat);
    ``max_retries`` re-runs a raising or timed-out job with jittered
    exponential backoff (``retry_backoff * 2**attempt`` scaled by a
    deterministic jitter in [0.5, 1.5), seeded from ``retry_seed`` and
    the job id so concurrent shards do not retry in lockstep); a job
    that still fails lands in :attr:`CampaignReport.failures` and the
    matrix continues.  The legacy keyword knobs build a
    :class:`CampaignOptions`; pass one *or* the other, not both.
    """
    start = time.perf_counter()
    jobs = tuple(jobs)
    if options is None:
        options = CampaignOptions(
            job_timeout=job_timeout,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            retry_seed=retry_seed,
        )
    elif (
        job_timeout is not None
        or max_retries != 0
        or retry_backoff != 0.5
        or retry_seed != 0
    ):
        raise CampaignError(
            "pass either options=CampaignOptions(...) or the legacy "
            "keyword knobs, not both"
        )
    if checkpoint_dir is not None:
        ensure_writable_dir(checkpoint_dir)
    for job in jobs:
        if job.system_id not in systems:
            raise CampaignError(
                f"job {job.job_id!r} references unknown system "
                f"{job.system_id!r}"
            )
    if options.campaign_workers > 1 and len(jobs) > 1:
        outcomes = _run_jobs_threaded(
            systems, jobs, checkpoint_dir, options, progress
        )
    else:
        outcomes = {}
        for job in jobs:
            outcome = _process_job(systems, job, checkpoint_dir, options)
            outcomes[job.job_id] = outcome
            result, failure, was_resumed, _ = outcome
            if failure is None and progress is not None:
                progress(job, result, was_resumed)
    results: Dict[str, OptimisationResult] = {}
    executed: List[str] = []
    resumed: List[str] = []
    failures: Dict[str, CampaignJobFailure] = {}
    quarantined: List[str] = []
    for job in jobs:  # report bookkeeping is matrix-ordered
        result, failure, was_resumed, was_quarantined = outcomes[job.job_id]
        if was_quarantined:
            quarantined.append(job.job_id)
        if failure is not None:
            failures[job.job_id] = failure
            continue
        (resumed if was_resumed else executed).append(job.job_id)
        results[job.job_id] = result
    return CampaignReport(
        results=results,
        executed=tuple(executed),
        resumed=tuple(resumed),
        checkpoint_dir=checkpoint_dir,
        elapsed_seconds=time.perf_counter() - start,
        failures=failures,
        quarantined=tuple(quarantined),
    )


#: One job's outcome: (result, failure, was_resumed, was_quarantined).
_JobOutcome = Tuple[
    Optional[OptimisationResult],
    Optional[CampaignJobFailure],
    bool,
    bool,
]


def _process_job(
    systems: Mapping[str, System],
    job: CampaignJob,
    checkpoint_dir: Optional[str],
    options: CampaignOptions,
) -> _JobOutcome:
    """Resume-or-run one job: the unit both execution modes share."""
    system = systems[job.system_id]
    result = None
    was_quarantined = False
    if checkpoint_dir is not None:
        result, was_quarantined = _load_checkpoint(checkpoint_dir, job, system)
    if result is not None:
        return result, None, True, was_quarantined
    result, failure = _attempt_job(
        system, job, options.job_timeout, options.max_retries,
        options.retry_backoff, options.retry_seed,
    )
    if failure is not None:
        return None, failure, False, was_quarantined
    if checkpoint_dir is not None:
        _write_checkpoint(checkpoint_dir, job, system, result)
    return result, failure, False, was_quarantined


def _run_jobs_threaded(
    systems: Mapping[str, System],
    jobs: Tuple[CampaignJob, ...],
    checkpoint_dir: Optional[str],
    options: CampaignOptions,
    progress: Optional[Callable[[CampaignJob, OptimisationResult, bool], None]],
) -> Dict[str, _JobOutcome]:
    """Run the matrix on ``campaign_workers`` threads.

    Campaign-*definition* errors (foreign checkpoints) still raise: the
    first one wins, the queue is drained, and every already-running job
    finishes before the exception propagates.  ``progress`` fires in
    completion order, serialised under a lock.
    """
    pending = list(jobs)
    outcomes: Dict[str, _JobOutcome] = {}
    lock = threading.Lock()
    errors: List[BaseException] = []

    def worker() -> None:
        while True:
            with lock:
                if errors or not pending:
                    return
                job = pending.pop(0)
            try:
                outcome = _process_job(systems, job, checkpoint_dir, options)
            except BaseException as exc:  # noqa: BLE001 - relayed below
                with lock:
                    errors.append(exc)
                return
            result, failure, was_resumed, _ = outcome
            with lock:
                outcomes[job.job_id] = outcome
                if failure is None and progress is not None:
                    progress(job, result, was_resumed)

    threads = [
        threading.Thread(
            target=worker, daemon=True, name=f"campaign-worker-{i}"
        )
        for i in range(min(options.campaign_workers, len(jobs)))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return outcomes


def _attempt_job(
    system: System,
    job: CampaignJob,
    job_timeout: Optional[float],
    max_retries: int,
    retry_backoff: float,
    retry_seed: int,
) -> Tuple[Optional[OptimisationResult], Optional[CampaignJobFailure]]:
    """Run one job with bounded retries; ``(result, None)`` or
    ``(None, failure)``."""
    rng = None
    last: Tuple[str, str] = ("error", "job never ran")
    attempts = 0
    for attempt in range(max_retries + 1):
        attempts = attempt + 1
        try:
            return _run_job(system, job, job_timeout), None
        except _JobTimeout as exc:
            last = ("timeout", str(exc))
        except Exception as exc:  # noqa: BLE001 - recorded, not silenced
            last = ("error", f"{type(exc).__name__}: {exc}")
        if attempt < max_retries and retry_backoff > 0:
            if rng is None:
                rng = random.Random(f"{retry_seed}|{job.job_id}")
            time.sleep(retry_backoff * (2**attempt) * (0.5 + rng.random()))
    kind, message = last
    return None, CampaignJobFailure(
        job_id=job.job_id, kind=kind, message=message, attempts=attempts
    )


# ----------------------------------------------------------------------
# checkpoint store
# ----------------------------------------------------------------------
def _checkpoint_path(checkpoint_dir: str, job: CampaignJob) -> str:
    return os.path.join(checkpoint_dir, f"{job.job_id}.json")


def _options_fingerprint(options: Optional[StrategyOptions]) -> str:
    """Deterministic digest of a job's *result-affecting* options.

    Dataclass ``repr`` covers every field (including the nested bus and
    analysis option records), so any knob change -- budgets, seeds,
    sweep resolutions -- changes the fingerprint and invalidates the
    checkpoint.  ``parallel_workers`` is normalised out first: runs are
    pinned byte-identical serial vs. parallel, so resuming a shard on a
    host with a different ``--workers`` must *keep* its checkpoints.
    ``analysis.backend`` is normalised out for the same reason: the
    array backend is pinned bit-identical to the Python oracle (and
    ``"verify"`` *asserts* that per analysis), so a campaign may resume
    under a different backend -- e.g. shards first run on a numpy-less
    host -- without discarding its checkpoints.  (``obc_chunk_size``
    and ``max_cache_entries`` stay in: chunking can evaluate extra
    candidates under early stopping, and cache evictions change the
    evaluation accounting.)
    """
    if options is not None:
        # Resolve ``bus=None`` to the explicit defaults before hashing,
        # so "defaults implied" and "defaults spelled out with a worker
        # count" fingerprint identically.
        bus = options.bus_options()
        options = replace(
            options,
            bus=replace(
                bus,
                parallel_workers=None,
                analysis=replace(bus.analysis, backend="python"),
            ),
        )
    return hashlib.sha256(repr(options).encode("utf-8")).hexdigest()[:16]


#: Back-compat alias: the system digest moved to
#: :func:`repro.io.serialization.system_fingerprint` when the service
#: layer started keying its warm evaluator pool on it.
_system_fingerprint = system_fingerprint


def _job_meta(job: CampaignJob, system: System) -> dict:
    return {
        "job_id": job.job_id,
        "system_id": job.system_id,
        "strategy": job.strategy,
        "options_fingerprint": _options_fingerprint(job.options),
        "system_fingerprint": _system_fingerprint(system),
    }


def _write_checkpoint(
    checkpoint_dir: str,
    job: CampaignJob,
    system: System,
    result: OptimisationResult,
) -> None:
    """Atomically persist one finished job (write tmp, then rename)."""
    payload = {
        "job": _job_meta(job, system),
        "result": result_to_dict(result),
    }
    path = _checkpoint_path(checkpoint_dir, job)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def _quarantine(path: str) -> str:
    """Move a corrupted checkpoint aside; returns the quarantine path."""
    n = 1
    while True:
        target = f"{path}.quarantined.{n}"
        if not os.path.exists(target):
            break
        n += 1
    os.replace(path, target)
    return target


def _load_checkpoint(
    checkpoint_dir: str, job: CampaignJob, system: System
) -> Tuple[Optional[OptimisationResult], bool]:
    """``(result, quarantined)``: a finished job's result or ``None``
    when it must (re)run, plus whether a corrupted file was quarantined.

    Unreadable or half-written checkpoints are *quarantined* -- moved
    aside under a ``.quarantined.N`` suffix so the corrupted bytes stay
    inspectable -- and the job re-runs and writes a fresh file at the
    original path.  A checkpoint whose options/system *fingerprints*
    disagree with the job's is simply re-run (the job was redefined:
    new budgets, new seed, edited system -- nothing is corrupted).  A
    *well-formed* checkpoint whose job identity disagrees with the
    requested job is someone else's file and raises instead of being
    silently clobbered.
    """
    path = _checkpoint_path(checkpoint_dir, job)
    if not os.path.exists(path):
        return None, False
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        meta = dict(payload["job"])
        result_data = payload["result"]
    except (json.JSONDecodeError, KeyError, TypeError, OSError):
        _quarantine(path)
        return None, True
    expected = _job_meta(job, system)
    identity = ("job_id", "system_id", "strategy")
    if {k: meta.get(k) for k in identity} != {k: expected[k] for k in identity}:
        raise CampaignError(
            f"checkpoint {path} belongs to job "
            f"{ {k: meta.get(k) for k in identity} !r}, not "
            f"{ {k: expected[k] for k in identity} !r}"
        )
    if meta != expected:
        return None, False  # same job id, redefined content: re-run
    try:
        return result_from_dict(result_data), False
    except SerializationError:
        _quarantine(path)
        return None, True
