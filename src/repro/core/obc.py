"""Optimised Bus Configuration heuristic -- OBC (Fig. 6 of the paper).

Explores static-segment alternatives (slot count from the per-sender
minimum upward, slot size from the largest-frame minimum upward in
2-byte steps, quota-based round-robin slot assignment) and, for each,
searches the DYN segment length with either exhaustive exploration
(OBC/EE) or the curve-fitting heuristic (OBC/CF).  The search ends as
soon as a schedulable configuration is found (line 7).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.analysis.holistic import AnalysisResult
from repro.core.config import FlexRayConfig
from repro.core.dynlen import curvefit_dyn_length, exhaustive_dyn_length
from repro.core.frameid import assign_frame_ids
from repro.core.result import OptimisationResult
from repro.core.search import (
    BusOptimisationOptions,
    Evaluator,
    better,
    dyn_segment_bounds,
    min_static_slot,
    quota_slot_assignment,
    sweep_lengths,
)
from repro.errors import ConfigurationError, OptimisationError
from repro.flexray import params
from repro.model.system import System

#: Supported DYN-length search strategies.
METHODS = ("curvefit", "exhaustive")


def optimise_obc(
    system: System,
    options: BusOptimisationOptions = None,
    method: str = "curvefit",
) -> OptimisationResult:
    """Run the OBC heuristic; ``method`` selects OBC/CF or OBC/EE."""
    if method not in METHODS:
        raise OptimisationError(
            f"unknown DYN search method {method!r}; choose from {METHODS}"
        )
    options = options or BusOptimisationOptions()
    start = time.perf_counter()
    evaluator = Evaluator(system, options)
    try:
        return _optimise_obc(system, options, method, evaluator, start)
    finally:
        evaluator.close()


def _optimise_obc(
    system: System,
    options: BusOptimisationOptions,
    method: str,
    evaluator: Evaluator,
    start: float,
) -> OptimisationResult:
    frame_ids = assign_frame_ids(
        system, options.bits_per_mt, options.frame_overhead_bytes
    )
    st_nodes = system.st_sender_nodes()
    n_min = len(st_nodes)
    n_max = min(n_min + options.max_extra_static_slots, params.MAX_STATIC_SLOTS)
    slot_min = min_static_slot(system, options)
    slot_max = min(
        slot_min + params.STATIC_SLOT_STEP_MT * options.max_slot_size_steps,
        params.MAX_STATIC_SLOT_MT,
    )

    best: Optional[AnalysisResult] = None
    for n_slots in range(max(n_min, 0), n_max + 1):
        slots = quota_slot_assignment(system, n_slots) if n_slots else ()
        slot_sizes = (
            range(slot_min, slot_max + 1, params.STATIC_SLOT_STEP_MT)
            if n_slots
            else (0,)
        )
        for slot_size in slot_sizes:
            st_bus = n_slots * slot_size
            lo, hi = dyn_segment_bounds(system, st_bus, options)
            template = _template(
                slots, slot_size if n_slots else 0, max(lo, 1), frame_ids, options
            )
            if template is None:
                continue
            if lo == 0 and hi == 0:
                # No DYN messages; keep a minimal dynamic segment only when
                # the cycle would otherwise be empty.
                try:
                    no_dyn = template.with_dyn_length(0)
                except ConfigurationError:
                    no_dyn = template
                result = evaluator.analyse(no_dyn)
            elif hi < lo:
                continue  # the static segment leaves no room for DYN frames
            elif method == "curvefit":
                result = curvefit_dyn_length(evaluator, template, lo, hi)
            else:
                result = exhaustive_dyn_length(evaluator, template, lo, hi)
            if result is not None and not result.feasible:
                result = None
            if better(result, best):
                best = result
            if (
                options.stop_when_schedulable
                and best is not None
                and best.schedulable
            ):
                return _finish(best, evaluator, method, start)
        if not st_nodes:
            break  # no static structure to vary
    return _finish(best, evaluator, method, start)


def _template(slots, slot_size, n_minislots, frame_ids, options):
    try:
        return FlexRayConfig(
            static_slots=slots,
            gd_static_slot=slot_size,
            n_minislots=n_minislots,
            frame_ids=frame_ids,
            gd_minislot=options.gd_minislot,
            bits_per_mt=options.bits_per_mt,
            frame_overhead_bytes=options.frame_overhead_bytes,
        )
    except ConfigurationError:
        return None  # e.g. the static segment alone exceeds 16 ms


def _finish(best, evaluator, method, start) -> OptimisationResult:
    name = "OBC/CF" if method == "curvefit" else "OBC/EE"
    return OptimisationResult(
        algorithm=name,
        best=best,
        evaluations=evaluator.evaluations,
        elapsed_seconds=time.perf_counter() - start,
        trace=tuple(evaluator.trace),
        cache_hits=evaluator.cache_hits,
    )
