"""Optimised Bus Configuration heuristic -- OBC (Fig. 6 of the paper).

Explores static-segment alternatives (slot count from the per-sender
minimum upward, slot size from the largest-frame minimum upward in
2-byte steps, quota-based round-robin slot assignment) and, for each,
searches the DYN segment length with either exhaustive exploration
(OBC/EE) or the curve-fitting heuristic (OBC/CF).  The search ends as
soon as a schedulable configuration is found (line 7).

The strategy is a proposal generator (:mod:`repro.core.runtime`): each
variant's DYN search is a ``yield from`` over the
:mod:`repro.core.dynlen` subgenerators, and the first-schedulable early
stop is the generator returning its selection -- which takes precedence
over the driver's default lowest-cost pick, preserving the exact Fig. 6
semantics (the run reports the configuration that *triggered* the stop).

``BusOptimisationOptions.obc_chunk_size > 1`` turns the outer loop into
a *chunked race*: static variants are independent until the first
schedulable hit, so a chunk's initial candidate sets (each variant's
full EE sweep, or its CF seed points) are prefetched through one
:meth:`~repro.core.search.Evaluator.analyse_many` batch -- fanning out
over the parallel pool when one is configured -- before the variants
are searched in deterministic serial order.  The first hit always
resolves to the same variant as the serial chunked run, so fixed-seed
runs are byte-identical serial vs. parallel.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.holistic import AnalysisResult
from repro.core.config import FlexRayConfig
from repro.core.dynlen import (
    cf_seed_lengths,
    curvefit_proposals,
    ee_sweep_lengths,
    exhaustive_proposals,
)
from repro.core.frameid import assign_frame_ids
from repro.core.result import OptimisationResult
from repro.core.runtime import (
    CandidateBatch,
    Proposals,
    SearchDriver,
    SearchStrategy,
)
from repro.core.search import (
    BusOptimisationOptions,
    better,
    dyn_segment_bounds,
    min_static_slot,
    quota_slot_assignment,
)
from repro.core.strategies import StrategyOptions, StrategySpec
from repro.errors import ConfigurationError, OptimisationError
from repro.flexray import params
from repro.model.system import System

#: Supported DYN-length search strategies.
METHODS = ("curvefit", "exhaustive")


def _static_variants(
    system: System, options: BusOptimisationOptions
) -> List[Tuple[Optional[FlexRayConfig], int, int]]:
    """The OBC outer loop's static-segment alternatives, in serial order.

    Each entry is ``(template, lo, hi)``; ``lo == hi == 0`` marks the
    no-DYN-message case whose single candidate is analysed directly.
    Materialising the loop lets the chunked mode race whole variants
    while keeping the exact Fig. 5/6 enumeration order.
    """
    frame_ids = assign_frame_ids(
        system, options.bits_per_mt, options.frame_overhead_bytes
    )
    st_nodes = system.st_sender_nodes()
    n_min = len(st_nodes)
    n_max = min(n_min + options.max_extra_static_slots, params.MAX_STATIC_SLOTS)
    slot_min = min_static_slot(system, options)
    slot_max = min(
        slot_min + params.STATIC_SLOT_STEP_MT * options.max_slot_size_steps,
        params.MAX_STATIC_SLOT_MT,
    )
    variants: List[Tuple[Optional[FlexRayConfig], int, int]] = []
    for n_slots in range(max(n_min, 0), n_max + 1):
        slots = quota_slot_assignment(system, n_slots) if n_slots else ()
        slot_sizes = (
            range(slot_min, slot_max + 1, params.STATIC_SLOT_STEP_MT)
            if n_slots
            else (0,)
        )
        for slot_size in slot_sizes:
            st_bus = n_slots * slot_size
            lo, hi = dyn_segment_bounds(system, st_bus, options)
            template = _template(
                slots, slot_size if n_slots else 0, max(lo, 1), frame_ids,
                options,
            )
            if template is None:
                continue
            if hi < lo and not (lo == 0 and hi == 0):
                continue  # the static segment leaves no room for DYN frames
            variants.append((template, lo, hi))
        if not st_nodes:
            break  # no static structure to vary
    return variants


def _no_dyn_config(template: FlexRayConfig) -> FlexRayConfig:
    """The single candidate of a variant without DYN messages: a minimal
    dynamic segment is kept only when the cycle would otherwise be empty."""
    try:
        return template.with_dyn_length(0)
    except ConfigurationError:
        return template


def _prefetch_configs(
    variant: Tuple[Optional[FlexRayConfig], int, int],
    options: BusOptimisationOptions,
    method: str,
) -> List[FlexRayConfig]:
    """The configurations a variant's search is known to analyse first.

    OBC/EE analyses its whole sweep; OBC/CF starts with the exact seed
    points; the no-DYN case has exactly one candidate.  The candidate
    lengths come from the same helpers the searches themselves use
    (:func:`~repro.core.dynlen.ee_sweep_lengths`,
    :func:`~repro.core.dynlen.cf_seed_lengths`), so the prefetched
    batch warms the evaluator's result cache with exactly what the
    subsequent in-order search re-reads.
    """
    template, lo, hi = variant
    if lo == 0 and hi == 0:
        return [_no_dyn_config(template)]
    if method == "curvefit":
        lengths = cf_seed_lengths(lo, hi, options)
    else:
        lengths = ee_sweep_lengths(lo, hi, options)
    return [template.with_dyn_length(n) for n in lengths]


class OBCStrategy(SearchStrategy):
    """The Fig. 6 outer loop as a proposal strategy (CF or EE inner)."""

    def __init__(self, options: StrategyOptions = None, method: str = "curvefit"):
        if method not in METHODS:
            raise OptimisationError(
                f"unknown DYN search method {method!r}; choose from {METHODS}"
            )
        super().__init__(options)
        self.method = method
        self.algorithm = "OBC/CF" if method == "curvefit" else "OBC/EE"

    def proposals(self, system: System) -> Proposals:
        bus = self.options.bus_options()
        method = self.method
        variants = _static_variants(system, bus)
        chunk = max(1, bus.obc_chunk_size or 1)
        best: Optional[AnalysisResult] = None
        for base in range(0, len(variants), chunk):
            group = variants[base : base + chunk]
            if len(group) > 1:
                # Race the chunk: one batch over every variant's initial
                # candidate set, fanned out over the pool when configured.
                prefetch: List[FlexRayConfig] = []
                for variant in group:
                    prefetch.extend(_prefetch_configs(variant, bus, method))
                yield CandidateBatch(tuple(prefetch))
            for template, lo, hi in group:
                if lo == 0 and hi == 0:
                    results = yield CandidateBatch(
                        (_no_dyn_config(template),)
                    )
                    result = results[0]
                elif method == "curvefit":
                    result = yield from curvefit_proposals(
                        system, bus, template, lo, hi
                    )
                else:
                    result = yield from exhaustive_proposals(
                        bus, template, lo, hi
                    )
                if result is not None and not result.feasible:
                    result = None
                if better(result, best):
                    best = result
                if (
                    bus.stop_when_schedulable
                    and best is not None
                    and best.schedulable
                ):
                    return best
        return best


def _template(slots, slot_size, n_minislots, frame_ids, options):
    try:
        return FlexRayConfig(
            static_slots=slots,
            gd_static_slot=slot_size,
            n_minislots=n_minislots,
            frame_ids=frame_ids,
            gd_minislot=options.gd_minislot,
            bits_per_mt=options.bits_per_mt,
            frame_overhead_bytes=options.frame_overhead_bytes,
        )
    except ConfigurationError:
        return None  # e.g. the static segment alone exceeds 16 ms


def _run_obc_cf(system: System, options: StrategyOptions) -> OptimisationResult:
    return SearchDriver(system, OBCStrategy(options, "curvefit")).run()


def _run_obc_ee(system: System, options: StrategyOptions) -> OptimisationResult:
    return SearchDriver(system, OBCStrategy(options, "exhaustive")).run()


STRATEGY_SPEC_CF = StrategySpec(
    name="obc-cf",
    summary="OBC with the curve-fitting DYN-length heuristic (Fig. 8)",
    options_type=StrategyOptions,
    runner=_run_obc_cf,
)

STRATEGY_SPEC_EE = StrategySpec(
    name="obc-ee",
    summary="OBC with exhaustive DYN-length exploration",
    options_type=StrategyOptions,
    runner=_run_obc_ee,
)


def optimise_obc(
    system: System,
    options: BusOptimisationOptions = None,
    method: str = "curvefit",
) -> OptimisationResult:
    """Run the OBC heuristic; ``method`` selects OBC/CF or OBC/EE."""
    return SearchDriver(
        system, OBCStrategy(StrategyOptions(bus=options), method)
    ).run()
