"""Simulated annealing baseline (Section 7).

The paper implements an SA explorer "with moves concerning not only the
number and size of static slots and size of the DYN segment, but also
the assignment of slots to nodes and FrameIDs to messages" and runs it
for hours to obtain near-optimal reference costs.  This module provides
that baseline with an iteration/time budget so laptop runs finish; the
budget is a parameter for paper-scale experiments.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, replace
from typing import Optional

from repro.analysis.holistic import AnalysisResult
from repro.core.bbc import basic_configuration
from repro.core.config import FlexRayConfig
from repro.core.result import OptimisationResult
from repro.core.search import (
    BusOptimisationOptions,
    Evaluator,
    better,
    dyn_segment_bounds,
    min_static_slot,
)
from repro.errors import ConfigurationError
from repro.flexray import params
from repro.model.system import System


@dataclass(frozen=True)
class SAOptions:
    """Annealing schedule and budget."""

    iterations: int = 400
    seed: int = 2007
    initial_temperature: Optional[float] = None  # auto: |initial cost| or 100
    cooling: float = 0.97
    moves_per_temperature: int = 8
    max_seconds: Optional[float] = None
    #: Number of independent annealing chains (restart *i* uses seed
    #: ``seed + i``); the best chain outcome wins.  Chains are
    #: embarrassingly parallel and run on the evaluation pool when
    #: ``BusOptimisationOptions.parallel_workers`` asks for one, with
    #: results merged in restart order so parallel == serial.
    restarts: int = 1


def optimise_sa(
    system: System,
    options: BusOptimisationOptions = None,
    sa_options: SAOptions = None,
) -> OptimisationResult:
    """Anneal over the full design space of Section 6."""
    options = options or BusOptimisationOptions()
    sa_options = sa_options or SAOptions()
    if sa_options.restarts > 1:
        return _optimise_sa_restarts(system, options, sa_options)
    start = time.perf_counter()
    result = _sa_chain(system, options, sa_options, sa_options.seed)
    return replace(result, elapsed_seconds=time.perf_counter() - start)


def _optimise_sa_restarts(
    system: System,
    options: BusOptimisationOptions,
    sa_options: SAOptions,
) -> OptimisationResult:
    """Run independent chains and merge them deterministically."""
    start = time.perf_counter()
    seeds = [sa_options.seed + i for i in range(sa_options.restarts)]
    chains: Optional[list] = None
    workers = options.parallel_workers or 0
    if workers > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=workers) as pool:
                chains = list(
                    pool.map(
                        _sa_chain_job,
                        [(system, options, sa_options, s) for s in seeds],
                    )
                )
        except Exception:
            chains = None  # e.g. unpicklable payload: fall back to serial
    if chains is None:
        chains = [_sa_chain(system, options, sa_options, s) for s in seeds]

    best: Optional[AnalysisResult] = None
    trace = []
    evaluations = 0
    cache_hits = 0
    for chain in chains:
        evaluations += chain.evaluations
        cache_hits += chain.cache_hits
        trace.extend(chain.trace)
        if chain.best is not None and better(chain.best, best):
            best = chain.best
    return OptimisationResult(
        algorithm="SA",
        best=best,
        evaluations=evaluations,
        elapsed_seconds=time.perf_counter() - start,
        trace=tuple(trace),
        cache_hits=cache_hits,
    )


def _sa_chain_job(args) -> OptimisationResult:
    """Module-level wrapper so restart chains can cross process bounds."""
    system, options, sa_options, seed = args
    return _sa_chain(system, options, sa_options, seed)


def _sa_chain(
    system: System,
    options: BusOptimisationOptions,
    sa_options: SAOptions,
    seed: int,
) -> OptimisationResult:
    """One annealing chain with its own evaluator and trace."""
    start = time.perf_counter()
    rng = random.Random(seed)
    evaluator = Evaluator(system, options)

    try:
        current_cfg = _initial_config(system, options)
        current = evaluator.analyse(current_cfg)
        best: Optional[AnalysisResult] = current if current.feasible else None

        temperature = sa_options.initial_temperature
        if temperature is None:
            scale = abs(current.cost_value) if current.feasible else 0.0
            temperature = max(scale, 100.0)

        moves_left = sa_options.moves_per_temperature
        for _ in range(sa_options.iterations):
            if (
                sa_options.max_seconds is not None
                and time.perf_counter() - start > sa_options.max_seconds
            ):
                break
            neighbour_cfg = _neighbour(system, current_cfg, options, rng)
            if neighbour_cfg is None:
                continue
            neighbour = evaluator.analyse(neighbour_cfg)
            if _accept(current, neighbour, temperature, rng):
                current_cfg, current = neighbour_cfg, neighbour
            if neighbour.feasible and better(neighbour, best):
                best = neighbour
            moves_left -= 1
            if moves_left <= 0:
                temperature = max(temperature * sa_options.cooling, 1e-6)
                moves_left = sa_options.moves_per_temperature

        return OptimisationResult(
            algorithm="SA",
            best=best,
            evaluations=evaluator.evaluations,
            elapsed_seconds=time.perf_counter() - start,
            trace=tuple(evaluator.trace),
            cache_hits=evaluator.cache_hits,
        )
    finally:
        evaluator.close()


def _initial_config(
    system: System, options: BusOptimisationOptions
) -> FlexRayConfig:
    """Start from the BBC structure with a mid-range DYN segment."""
    st_nodes = system.st_sender_nodes()
    slot = min_static_slot(system, options) if st_nodes else 0
    lo, hi = dyn_segment_bounds(system, len(st_nodes) * slot, options)
    if hi >= lo and hi > 0:
        return basic_configuration(system, (lo + hi) // 2, options)
    return basic_configuration(system, 0, options)


def _accept(
    current: AnalysisResult,
    neighbour: AnalysisResult,
    temperature: float,
    rng: random.Random,
) -> bool:
    cur = current.cost_value
    new = neighbour.cost_value
    if math.isinf(new):
        return False
    if math.isinf(cur) or new <= cur:
        return True
    return rng.random() < math.exp(-(new - cur) / temperature)


def _neighbour(
    system: System,
    cfg: FlexRayConfig,
    options: BusOptimisationOptions,
    rng: random.Random,
) -> Optional[FlexRayConfig]:
    """One random legal move; None when the chosen move is inapplicable."""
    moves = [
        _move_dyn_length,
        _move_dyn_scale,
        _move_slot_size,
        _move_add_slot,
        _move_remove_slot,
        _move_reassign_slot,
        _move_swap_frame_ids,
        _move_relocate_frame_id,
    ]
    move = rng.choice(moves)
    try:
        return move(system, cfg, options, rng)
    except ConfigurationError:
        return None


def _move_dyn_length(system, cfg, options, rng) -> Optional[FlexRayConfig]:
    lo, hi = dyn_segment_bounds(system, cfg.st_bus, options)
    if hi < lo:
        return None
    span = max(1, (hi - lo) // 10)
    delta = rng.randint(1, span) * rng.choice((-1, 1))
    return cfg.with_dyn_length(min(hi, max(lo, cfg.n_minislots + delta)))


def _move_dyn_scale(system, cfg, options, rng) -> Optional[FlexRayConfig]:
    """Halve or double the DYN segment -- lets the annealer traverse the
    orders-of-magnitude range of legal lengths quickly."""
    lo, hi = dyn_segment_bounds(system, cfg.st_bus, options)
    if hi < lo:
        return None
    factor = rng.choice((0.5, 2.0))
    n = int(cfg.n_minislots * factor)
    return cfg.with_dyn_length(min(hi, max(lo, n)))


def _move_slot_size(system, cfg, options, rng) -> Optional[FlexRayConfig]:
    if not cfg.static_slots:
        return None
    step = params.STATIC_SLOT_STEP_MT * rng.randint(1, 3) * rng.choice((-1, 1))
    size = cfg.gd_static_slot + step
    size = max(min_static_slot(system, options), size)
    size = min(size, params.MAX_STATIC_SLOT_MT)
    return cfg.with_static(cfg.static_slots, size)


def _move_add_slot(system, cfg, options, rng) -> Optional[FlexRayConfig]:
    st_nodes = system.st_sender_nodes()
    if not st_nodes or len(cfg.static_slots) >= params.MAX_STATIC_SLOTS:
        return None
    node = rng.choice(st_nodes)
    position = rng.randint(0, len(cfg.static_slots))
    slots = (
        cfg.static_slots[:position] + (node,) + cfg.static_slots[position:]
    )
    return cfg.with_static(slots, cfg.gd_static_slot)


def _move_remove_slot(system, cfg, options, rng) -> Optional[FlexRayConfig]:
    st_nodes = system.st_sender_nodes()
    if len(cfg.static_slots) <= len(st_nodes):
        return None
    removable = [
        i
        for i, owner in enumerate(cfg.static_slots)
        if cfg.static_slots.count(owner) > 1
    ]
    if not removable:
        return None
    i = rng.choice(removable)
    slots = cfg.static_slots[:i] + cfg.static_slots[i + 1 :]
    return cfg.with_static(slots, cfg.gd_static_slot)


def _move_reassign_slot(system, cfg, options, rng) -> Optional[FlexRayConfig]:
    st_nodes = system.st_sender_nodes()
    if not cfg.static_slots or len(st_nodes) < 2:
        return None
    candidates = [
        i
        for i, owner in enumerate(cfg.static_slots)
        if cfg.static_slots.count(owner) > 1
    ]
    if not candidates:
        return None
    i = rng.choice(candidates)
    new_owner = rng.choice([n for n in st_nodes if n != cfg.static_slots[i]])
    slots = cfg.static_slots[:i] + (new_owner,) + cfg.static_slots[i + 1 :]
    return cfg.with_static(slots, cfg.gd_static_slot)


def _move_swap_frame_ids(system, cfg, options, rng) -> Optional[FlexRayConfig]:
    names = sorted(cfg.frame_ids)
    if len(names) < 2:
        return None
    a, b = rng.sample(names, 2)
    frame_ids = dict(cfg.frame_ids)
    frame_ids[a], frame_ids[b] = frame_ids[b], frame_ids[a]
    return cfg.with_frame_ids(frame_ids)


def _move_relocate_frame_id(system, cfg, options, rng) -> Optional[FlexRayConfig]:
    names = sorted(cfg.frame_ids)
    if not names or cfg.n_minislots < 1:
        return None
    name = rng.choice(names)
    used = set(cfg.frame_ids.values())
    free = [f for f in range(1, min(cfg.n_minislots, len(names) * 2) + 1)
            if f not in used]
    if not free:
        return None
    frame_ids = dict(cfg.frame_ids)
    frame_ids[name] = rng.choice(free)
    return cfg.with_frame_ids(frame_ids)
