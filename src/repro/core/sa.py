"""Simulated annealing baseline (Section 7).

The paper implements an SA explorer "with moves concerning not only the
number and size of static slots and size of the DYN segment, but also
the assignment of slots to nodes and FrameIDs to messages" and runs it
for hours to obtain near-optimal reference costs.  This module provides
that baseline with an iteration/time budget so laptop runs finish; the
budget is a parameter for paper-scale experiments.

One annealing chain is inherently sequential -- every move depends on
the previous acceptance decision -- so :class:`SAStrategy` proposes
single-candidate batches through the search runtime and the driver's
default lowest-cost selection reproduces the legacy outcome exactly.
Parallelism comes from *restarts*: independent chains (each its own
:class:`~repro.core.runtime.SearchDriver` run, hence its own evaluator
and trace) raced across a process pool and merged in restart order, so
parallel == serial byte-identically.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Optional

from repro.analysis.holistic import AnalysisResult
from repro.core.bbc import basic_configuration
from repro.core.config import FlexRayConfig
from repro.core.result import OptimisationResult
from repro.core.runtime import (
    CandidateBatch,
    Proposals,
    SearchDriver,
    SearchStrategy,
)
from repro.core.search import (
    BusOptimisationOptions,
    better,
    dyn_segment_bounds,
    min_static_slot,
)
from repro.core.strategies import StrategyOptions, StrategySpec
from repro.errors import ConfigurationError
from repro.flexray import params
from repro.model.system import System


@dataclass(frozen=True)
class SAOptions(StrategyOptions):
    """Annealing schedule and budget.

    Extends :class:`~repro.core.strategies.StrategyOptions`, so it also
    carries the evaluator knobs (``bus``) and the driver budgets; the
    inherited ``max_seconds`` doubles as the legacy per-chain wall-clock
    budget (checked inside the chain at the same point as before, so
    fixed-seed traces are unchanged).
    """

    iterations: int = 400
    seed: int = 2007
    initial_temperature: Optional[float] = None  # auto: |initial cost| or 100
    cooling: float = 0.97
    moves_per_temperature: int = 8
    #: Number of independent annealing chains (restart *i* uses seed
    #: ``seed + i``); the best chain outcome wins.  Chains are
    #: embarrassingly parallel and run on the evaluation pool when
    #: ``BusOptimisationOptions.parallel_workers`` asks for one, with
    #: results merged in restart order so parallel == serial.  The
    #: driver budgets (``max_seconds`` / ``max_evaluations``) apply
    #: *per chain* -- chains are independent driver runs, deliberately
    #: free of cross-chain coupling so the parallel chain map stays
    #: byte-identical to the serial one; the merged result reports
    #: ``stop_reason="budget"`` when any chain was cut short.
    restarts: int = 1


class SAStrategy(SearchStrategy):
    """One annealing chain as a proposal strategy.

    ``chain_seed`` overrides the options' seed (used by the restart
    runner to derive per-chain seeds); the driver's default selection
    (lowest cost among feasible candidates, first occurrence) is the
    legacy chain outcome.
    """

    algorithm = "SA"

    def __init__(self, options: SAOptions = None, chain_seed: Optional[int] = None):
        super().__init__(options if options is not None else SAOptions())
        self.chain_seed = (
            chain_seed if chain_seed is not None else self.options.seed
        )

    def proposals(self, system: System) -> Proposals:
        sa_options = self.options
        bus = sa_options.bus_options()
        start = time.perf_counter()
        rng = random.Random(self.chain_seed)

        current_cfg = _initial_config(system, bus)
        results = yield CandidateBatch((current_cfg,))
        current = results[0]

        temperature = sa_options.initial_temperature
        if temperature is None:
            scale = abs(current.cost_value) if current.feasible else 0.0
            temperature = max(scale, 100.0)

        moves_left = sa_options.moves_per_temperature
        for _ in range(sa_options.iterations):
            if (
                sa_options.max_seconds is not None
                and time.perf_counter() - start > sa_options.max_seconds
            ):
                break
            neighbour_cfg = _neighbour(system, current_cfg, bus, rng)
            if neighbour_cfg is None:
                continue
            results = yield CandidateBatch((neighbour_cfg,))
            neighbour = results[0]
            if _accept(current, neighbour, temperature, rng):
                current_cfg, current = neighbour_cfg, neighbour
            moves_left -= 1
            if moves_left <= 0:
                temperature = max(temperature * sa_options.cooling, 1e-6)
                moves_left = sa_options.moves_per_temperature
        return None  # driver default: lowest-cost feasible candidate


def run_sa(system: System, sa_options: SAOptions) -> OptimisationResult:
    """Registry runner: one chain, or merged restart chains."""
    if sa_options.restarts > 1:
        return _optimise_sa_restarts(system, sa_options)
    return SearchDriver(system, SAStrategy(sa_options)).run()


STRATEGY_SPEC = StrategySpec(
    name="sa",
    summary="Simulated annealing over the full Section 6 design space",
    options_type=SAOptions,
    runner=run_sa,
)


def optimise_sa(
    system: System,
    options: BusOptimisationOptions = None,
    sa_options: SAOptions = None,
) -> OptimisationResult:
    """Anneal over the full design space of Section 6."""
    sa_options = sa_options if sa_options is not None else SAOptions()
    return run_sa(system, sa_options.with_bus(options))


def _optimise_sa_restarts(
    system: System, sa_options: SAOptions
) -> OptimisationResult:
    """Run independent chains and merge them deterministically."""
    start = time.perf_counter()
    seeds = [sa_options.seed + i for i in range(sa_options.restarts)]
    chains: Optional[list] = None
    workers = sa_options.bus_options().parallel_workers or 0
    if workers > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=workers) as pool:
                chains = list(
                    pool.map(
                        _sa_chain_job,
                        [(system, sa_options, s) for s in seeds],
                    )
                )
        except Exception:
            chains = None  # e.g. unpicklable payload: fall back to serial
    if chains is None:
        chains = [_sa_chain(system, sa_options, s) for s in seeds]

    best: Optional[AnalysisResult] = None
    trace = []
    evaluations = 0
    cache_hits = 0
    stop_reason = None
    for chain in chains:
        evaluations += chain.evaluations
        cache_hits += chain.cache_hits
        trace.extend(chain.trace)
        if chain.stop_reason is not None:
            stop_reason = chain.stop_reason
        if chain.best is not None and better(chain.best, best):
            best = chain.best
    return OptimisationResult(
        algorithm="SA",
        best=best,
        evaluations=evaluations,
        elapsed_seconds=time.perf_counter() - start,
        trace=tuple(trace),
        cache_hits=cache_hits,
        stop_reason=stop_reason,
    )


def _sa_chain_job(args) -> OptimisationResult:
    """Module-level wrapper so restart chains can cross process bounds."""
    system, sa_options, seed = args
    return _sa_chain(system, sa_options, seed)


def _sa_chain(
    system: System, sa_options: SAOptions, seed: int
) -> OptimisationResult:
    """One annealing chain: its own driver, evaluator and trace."""
    return SearchDriver(system, SAStrategy(sa_options, chain_seed=seed)).run()


def _initial_config(
    system: System, options: BusOptimisationOptions
) -> FlexRayConfig:
    """Start from the BBC structure with a mid-range DYN segment."""
    st_nodes = system.st_sender_nodes()
    slot = min_static_slot(system, options) if st_nodes else 0
    lo, hi = dyn_segment_bounds(system, len(st_nodes) * slot, options)
    if hi >= lo and hi > 0:
        return basic_configuration(system, (lo + hi) // 2, options)
    return basic_configuration(system, 0, options)


def _accept(
    current: AnalysisResult,
    neighbour: AnalysisResult,
    temperature: float,
    rng: random.Random,
) -> bool:
    cur = current.cost_value
    new = neighbour.cost_value
    if math.isinf(new):
        return False
    if math.isinf(cur) or new <= cur:
        return True
    return rng.random() < math.exp(-(new - cur) / temperature)


def _neighbour(
    system: System,
    cfg: FlexRayConfig,
    options: BusOptimisationOptions,
    rng: random.Random,
) -> Optional[FlexRayConfig]:
    """One random legal move; None when the chosen move is inapplicable."""
    moves = [
        _move_dyn_length,
        _move_dyn_scale,
        _move_slot_size,
        _move_add_slot,
        _move_remove_slot,
        _move_reassign_slot,
        _move_swap_frame_ids,
        _move_relocate_frame_id,
    ]
    move = rng.choice(moves)
    try:
        return move(system, cfg, options, rng)
    except ConfigurationError:
        return None


def _move_dyn_length(system, cfg, options, rng) -> Optional[FlexRayConfig]:
    lo, hi = dyn_segment_bounds(system, cfg.st_bus, options)
    if hi < lo:
        return None
    span = max(1, (hi - lo) // 10)
    delta = rng.randint(1, span) * rng.choice((-1, 1))
    return cfg.with_dyn_length(min(hi, max(lo, cfg.n_minislots + delta)))


def _move_dyn_scale(system, cfg, options, rng) -> Optional[FlexRayConfig]:
    """Halve or double the DYN segment -- lets the annealer traverse the
    orders-of-magnitude range of legal lengths quickly."""
    lo, hi = dyn_segment_bounds(system, cfg.st_bus, options)
    if hi < lo:
        return None
    factor = rng.choice((0.5, 2.0))
    n = int(cfg.n_minislots * factor)
    return cfg.with_dyn_length(min(hi, max(lo, n)))


def _move_slot_size(system, cfg, options, rng) -> Optional[FlexRayConfig]:
    if not cfg.static_slots:
        return None
    step = params.STATIC_SLOT_STEP_MT * rng.randint(1, 3) * rng.choice((-1, 1))
    size = cfg.gd_static_slot + step
    size = max(min_static_slot(system, options), size)
    size = min(size, params.MAX_STATIC_SLOT_MT)
    return cfg.with_static(cfg.static_slots, size)


def _move_add_slot(system, cfg, options, rng) -> Optional[FlexRayConfig]:
    st_nodes = system.st_sender_nodes()
    if not st_nodes or len(cfg.static_slots) >= params.MAX_STATIC_SLOTS:
        return None
    node = rng.choice(st_nodes)
    position = rng.randint(0, len(cfg.static_slots))
    slots = (
        cfg.static_slots[:position] + (node,) + cfg.static_slots[position:]
    )
    return cfg.with_static(slots, cfg.gd_static_slot)


def _move_remove_slot(system, cfg, options, rng) -> Optional[FlexRayConfig]:
    st_nodes = system.st_sender_nodes()
    if len(cfg.static_slots) <= len(st_nodes):
        return None
    removable = [
        i
        for i, owner in enumerate(cfg.static_slots)
        if cfg.static_slots.count(owner) > 1
    ]
    if not removable:
        return None
    i = rng.choice(removable)
    slots = cfg.static_slots[:i] + cfg.static_slots[i + 1 :]
    return cfg.with_static(slots, cfg.gd_static_slot)


def _move_reassign_slot(system, cfg, options, rng) -> Optional[FlexRayConfig]:
    st_nodes = system.st_sender_nodes()
    if not cfg.static_slots or len(st_nodes) < 2:
        return None
    candidates = [
        i
        for i, owner in enumerate(cfg.static_slots)
        if cfg.static_slots.count(owner) > 1
    ]
    if not candidates:
        return None
    i = rng.choice(candidates)
    new_owner = rng.choice([n for n in st_nodes if n != cfg.static_slots[i]])
    slots = cfg.static_slots[:i] + (new_owner,) + cfg.static_slots[i + 1 :]
    return cfg.with_static(slots, cfg.gd_static_slot)


def _move_swap_frame_ids(system, cfg, options, rng) -> Optional[FlexRayConfig]:
    names = sorted(cfg.frame_ids)
    if len(names) < 2:
        return None
    a, b = rng.sample(names, 2)
    frame_ids = dict(cfg.frame_ids)
    frame_ids[a], frame_ids[b] = frame_ids[b], frame_ids[a]
    return cfg.with_frame_ids(frame_ids)


def _move_relocate_frame_id(system, cfg, options, rng) -> Optional[FlexRayConfig]:
    names = sorted(cfg.frame_ids)
    if not names or cfg.n_minislots < 1:
        return None
    name = rng.choice(names)
    used = set(cfg.frame_ids.values())
    free = [f for f in range(1, min(cfg.n_minislots, len(names) * 2) + 1)
            if f not in used]
    if not free:
        return None
    frame_ids = dict(cfg.frame_ids)
    frame_ids[name] = rng.choice(free)
    return cfg.with_frame_ids(frame_ids)
