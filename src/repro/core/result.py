"""Result records shared by all bus-access optimisers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.analysis.holistic import AnalysisResult
from repro.core.config import FlexRayConfig


@dataclass(frozen=True)
class SearchPoint:
    """One evaluated configuration in an optimiser's search trace."""

    n_static_slots: int
    gd_static_slot: int
    n_minislots: int
    cost: float
    schedulable: bool
    exact: bool = True  # False for curve-fitting interpolated estimates


@dataclass(frozen=True)
class OptimisationResult:
    """Outcome of one optimiser run.

    ``best`` is the best *exactly analysed* configuration found (None when
    the optimiser never reached a feasible configuration); ``evaluations``
    counts the full scheduling+analysis runs -- the unit the paper uses to
    explain why OBC/CF beats OBC/EE by orders of magnitude.
    ``cache_hits`` counts candidate lookups the evaluator answered from
    its result cache instead of re-analysing; hits are *not* part of
    ``evaluations``, so the paper's evaluation comparisons stay exact.
    ``stop_reason`` is ``None`` for a run that exhausted its strategy's
    proposals and ``"budget"`` when the search driver cut the run short
    (wall-clock or evaluation-count budget of
    :class:`~repro.core.strategies.StrategyOptions`).
    """

    algorithm: str
    best: Optional[AnalysisResult]
    evaluations: int
    elapsed_seconds: float
    trace: Tuple[SearchPoint, ...] = field(default=())
    cache_hits: int = 0
    stop_reason: Optional[str] = None

    @property
    def schedulable(self) -> bool:
        """True when the best configuration meets all deadlines."""
        return self.best is not None and self.best.schedulable

    @property
    def cost(self) -> float:
        """Cost of the best configuration (+inf when none found)."""
        if self.best is None:
            return math.inf
        return self.best.cost_value

    @property
    def config(self) -> Optional[FlexRayConfig]:
        """Best configuration, if any."""
        return None if self.best is None else self.best.config

    def describe(self) -> str:
        """One-line human-readable summary."""
        status = "schedulable" if self.schedulable else "NOT schedulable"
        cfg = "none" if self.config is None else self.config.describe()
        return (
            f"{self.algorithm}: {status}, cost={self.cost:.1f}, "
            f"{self.evaluations} analyses in {self.elapsed_seconds:.2f}s, best={cfg}"
        )
