"""Basic Bus Configuration -- BBC (Fig. 5 of the paper).

The BBC derives a bus cycle from the application's minimal bandwidth
needs: unique criticality-ordered FrameIDs, one static slot per
ST-sending node, the slot just large enough for the biggest ST frame,
and a sweep over the legal DYN segment lengths keeping the best cost.

The whole sweep is one :class:`~repro.core.runtime.CandidateBatch`:
BBC proposes every candidate up front, the
:class:`~repro.core.runtime.SearchDriver` evaluates the batch (on the
parallel pool when configured) and its default deterministic selection
-- lowest cost, first occurrence, infeasible discarded -- is exactly
the Fig. 5 outcome.
"""

from __future__ import annotations

from repro.core.config import FlexRayConfig
from repro.core.frameid import assign_frame_ids
from repro.core.result import OptimisationResult
from repro.core.runtime import (
    CandidateBatch,
    Proposals,
    SearchDriver,
    SearchStrategy,
)
from repro.core.search import (
    BusOptimisationOptions,
    dyn_segment_bounds,
    min_static_slot,
    sweep_lengths,
)
from repro.core.strategies import StrategyOptions, StrategySpec
from repro.model.system import System


def basic_configuration(
    system: System, n_minislots: int, options: BusOptimisationOptions = None
) -> FlexRayConfig:
    """The BBC static structure with a given DYN segment length.

    When the system has no ST-sending nodes the static segment is empty
    and ``n_minislots`` is forced to at least 1 so the cycle is not
    empty.
    """
    options = options or BusOptimisationOptions()
    frame_ids = assign_frame_ids(
        system, options.bits_per_mt, options.frame_overhead_bytes
    )
    st_nodes = system.st_sender_nodes()
    if not st_nodes:
        n_minislots = max(1, n_minislots)
    return FlexRayConfig(
        static_slots=tuple(st_nodes),
        gd_static_slot=min_static_slot(system, options) if st_nodes else 0,
        n_minislots=n_minislots,
        frame_ids=frame_ids,
        gd_minislot=options.gd_minislot,
        bits_per_mt=options.bits_per_mt,
        frame_overhead_bytes=options.frame_overhead_bytes,
    )


class BBCStrategy(SearchStrategy):
    """The Fig. 5 sweep as a single-batch proposal strategy."""

    algorithm = "BBC"

    def proposals(self, system: System) -> Proposals:
        bus = self.options.bus_options()
        st_nodes = system.st_sender_nodes()
        slot = min_static_slot(system, bus) if st_nodes else 0
        st_bus = len(st_nodes) * slot
        lo, hi = dyn_segment_bounds(system, st_bus, bus)
        if lo == 0 and hi == 0:
            # No DYN messages: the cycle is purely static.
            yield CandidateBatch((basic_configuration(system, 0, bus),))
        else:
            # The whole sweep shares one static segment, so the warm
            # context reuses one schedule; batching also lets the
            # parallel pool fan the candidates out when configured.
            yield CandidateBatch(
                tuple(
                    basic_configuration(system, n_minislots, bus)
                    for n_minislots in sweep_lengths(lo, hi, bus.max_dyn_points)
                )
            )
        return None  # driver default selection == Fig. 5's keep-the-best


def _run_bbc(system: System, options: StrategyOptions) -> OptimisationResult:
    return SearchDriver(system, BBCStrategy(options)).run()


STRATEGY_SPEC = StrategySpec(
    name="bbc",
    summary="Basic Bus Configuration: minimal static segment, DYN sweep",
    options_type=StrategyOptions,
    runner=_run_bbc,
)


def optimise_bbc(
    system: System, options: BusOptimisationOptions = None
) -> OptimisationResult:
    """Run the BBC algorithm (Fig. 5) and return the best configuration."""
    return _run_bbc(system, StrategyOptions(bus=options))
