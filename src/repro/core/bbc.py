"""Basic Bus Configuration -- BBC (Fig. 5 of the paper).

The BBC derives a bus cycle from the application's minimal bandwidth
needs: unique criticality-ordered FrameIDs, one static slot per
ST-sending node, the slot just large enough for the biggest ST frame,
and a sweep over the legal DYN segment lengths keeping the best cost.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.analysis.holistic import AnalysisResult
from repro.core.config import FlexRayConfig
from repro.core.frameid import assign_frame_ids
from repro.core.result import OptimisationResult
from repro.core.search import (
    BusOptimisationOptions,
    Evaluator,
    better,
    dyn_segment_bounds,
    min_static_slot,
    sweep_lengths,
)
from repro.model.system import System


def basic_configuration(
    system: System, n_minislots: int, options: BusOptimisationOptions = None
) -> FlexRayConfig:
    """The BBC static structure with a given DYN segment length.

    When the system has no ST-sending nodes the static segment is empty
    and ``n_minislots`` is forced to at least 1 so the cycle is not
    empty.
    """
    options = options or BusOptimisationOptions()
    frame_ids = assign_frame_ids(
        system, options.bits_per_mt, options.frame_overhead_bytes
    )
    st_nodes = system.st_sender_nodes()
    if not st_nodes:
        n_minislots = max(1, n_minislots)
    return FlexRayConfig(
        static_slots=tuple(st_nodes),
        gd_static_slot=min_static_slot(system, options) if st_nodes else 0,
        n_minislots=n_minislots,
        frame_ids=frame_ids,
        gd_minislot=options.gd_minislot,
        bits_per_mt=options.bits_per_mt,
        frame_overhead_bytes=options.frame_overhead_bytes,
    )


def optimise_bbc(
    system: System, options: BusOptimisationOptions = None
) -> OptimisationResult:
    """Run the BBC algorithm (Fig. 5) and return the best configuration."""
    options = options or BusOptimisationOptions()
    start = time.perf_counter()
    evaluator = Evaluator(system, options)

    try:
        st_nodes = system.st_sender_nodes()
        slot = min_static_slot(system, options) if st_nodes else 0
        st_bus = len(st_nodes) * slot
        lo, hi = dyn_segment_bounds(system, st_bus, options)
        best: Optional[AnalysisResult] = None
        if lo == 0 and hi == 0:
            # No DYN messages: the cycle is purely static.
            best = evaluator.analyse(basic_configuration(system, 0, options))
        else:
            # The whole sweep shares one static segment, so the warm
            # context reuses one schedule; batching also lets the
            # parallel pool fan the candidates out when configured.
            configs = [
                basic_configuration(system, n_minislots, options)
                for n_minislots in sweep_lengths(lo, hi, options.max_dyn_points)
            ]
            for result in evaluator.analyse_many(configs):
                if better(result, best):
                    best = result
        if best is not None and not best.feasible:
            best = None
        return OptimisationResult(
            algorithm="BBC",
            best=best,
            evaluations=evaluator.evaluations,
            elapsed_seconds=time.perf_counter() - start,
            trace=tuple(evaluator.trace),
            cache_hits=evaluator.cache_hits,
        )
    finally:
        evaluator.close()
