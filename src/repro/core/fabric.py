"""Distributed campaign fabric: a filesystem-backed work queue.

The fabric turns a campaign job matrix into a directory that any number
of worker *processes* -- on one host or many hosts sharing a
filesystem -- can drain concurrently and crash-safely.  A coordinator
(:func:`fabric_submit`, ``repro campaign --fabric <dir>``) writes the
matrix once as a content-addressed manifest; workers
(:func:`fabric_work`, ``repro work <dir>``) claim jobs through atomic
*lease* files, execute them through the existing
:func:`~repro.core.campaign.run_campaign` job runner, and publish
finished checkpoints atomically; :func:`fabric_collect` merges the
published results back into one
:class:`~repro.core.campaign.CampaignReport`, byte-identical (modulo
wall-clock fields) to a sequential single-process run.

Directory layout (everything lives under the fabric root)::

    <root>/manifest.json     content-addressed job matrix (wire schema)
    <root>/checkpoints/      published results, one <job_id>.json each
    <root>/leases/           <job_id>.lease claims (+ reaped tombstones)
    <root>/failures/         <job_id>.json terminal-failure markers
    <root>/journal/          <worker_id>.jsonl append-only event logs
    <root>/staging/          per-claim private checkpoint directories

The lease protocol (every step is a single atomic filesystem
operation, so any worker may die at any point):

1. **Claim** -- a worker creates ``leases/<job_id>.lease`` via
   hard-link-from-temp (atomic create-with-content; ``EEXIST`` means
   someone else holds the job).  The lease records the owner id and a
   monotonically increasing heartbeat counter.
2. **Heartbeat** -- while the job runs, a renewal thread rewrites the
   lease (write-temp + ``os.replace``) every ``ttl/4`` seconds,
   bumping the counter and the file's mtime.  Renewal re-reads the
   lease first and *stops* if the owner changed: a reaped worker never
   resurrects its lease.
3. **Expiry / reap** -- a lease whose mtime is older than ``ttl`` is
   dead.  A reaper ``os.rename``\\ s it to a ``.reaped.N`` tombstone
   (exactly one racer wins the rename) and then claims normally.
4. **Publish** -- the worker runs the job with its checkpoint inside a
   *private* staging directory, then publishes via ``os.link`` into
   the shared ``checkpoints/`` directory.  The link either creates the
   file (exactly one winner, journalled ``completed``) or fails with
   ``EEXIST`` (the job was finished by someone else while our lease
   was presumed dead -- journalled ``lost-lease``, nothing clobbered).
   Zero jobs are ever *completed* twice: the link is the single
   serialisation point, which is the accounting the chaos battery in
   ``tests/test_fabric.py`` asserts.

Because fixed-seed runs are deterministic and checkpoints carry
options/system fingerprints, re-claiming a dead worker's job is
idempotent: the takeover run produces the identical result document,
and a half-written file can only exist in the dead worker's private
staging area -- the shared directory only ever sees complete,
atomically renamed checkpoints (anything unreadable there is moved
aside by the quarantine path of
:func:`~repro.core.campaign.run_campaign`'s checkpoint loader).

::

    from repro.core.fabric import fabric_submit, fabric_work, fabric_collect
    fabric_submit("out/fab", systems, ["bbc", ("sa", SAOptions(seed=7))])
    fabric_work("out/fab")          # any number of processes, any hosts
    report = fabric_collect("out/fab")
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.core.campaign import (
    CampaignJob,
    CampaignJobFailure,
    CampaignOptions,
    CampaignReport,
    StrategyRef,
    _load_checkpoint,
    campaign_matrix,
    ensure_writable_dir,
    run_campaign,
)
from repro.errors import CampaignError, SerializationError, ServiceError
from repro.io.serialization import (
    bus_options_from_dict,
    bus_options_to_dict,
    envelope,
    parse_envelope,
    strategy_options_to_fields,
    system_to_dict,
)
from repro.model.system import System

__all__ = [
    "FabricSpec",
    "FabricStatus",
    "WorkerReport",
    "fabric_collect",
    "fabric_events",
    "fabric_status",
    "fabric_submit",
    "fabric_work",
    "load_fabric",
]

MANIFEST_NAME = "manifest.json"
_SUBDIRS = ("checkpoints", "leases", "failures", "journal", "staging")


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FabricSpec:
    """One fabric directory's decoded manifest.

    ``jobs`` is the full matrix in coordinator order -- the order the
    sequential oracle would run and the order :func:`fabric_collect`
    reports in.  ``meta`` is an opaque coordinator payload (the Fig. 9
    runner stores its suite identity there so the aggregator can check
    it is merging the right sweep).
    """

    root: str
    fabric_id: str
    systems: Mapping[str, System]
    jobs: Tuple[CampaignJob, ...]
    options: CampaignOptions
    meta: Dict[str, Any] = field(default_factory=dict)

    def path(self, *parts: str) -> str:
        return os.path.join(self.root, *parts)

    @property
    def checkpoint_dir(self) -> str:
        return self.path("checkpoints")


def _canonical(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, sort_keys=True)


def _fabric_id(doc: Dict[str, Any]) -> str:
    return hashlib.sha256(_canonical(doc).encode("utf-8")).hexdigest()[:16]


def _atomic_write(path: str, text: str) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)


def _atomic_create(path: str, text: str) -> bool:
    """Atomically create *path* with *text*; ``False`` if it exists.

    Write-temp + ``os.link`` instead of ``O_EXCL`` + write: a reader
    can never observe the file empty or half-written, and the link
    syscall gives exactly one winner under any number of racers.
    """
    tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    try:
        os.link(tmp, path)
        return True
    except FileExistsError:
        return False
    finally:
        os.remove(tmp)


def _manifest_doc(
    systems: Mapping[str, System],
    strategies: Iterable[StrategyRef],
    bus,
    options: CampaignOptions,
    meta: Optional[Dict[str, Any]],
) -> Dict[str, Any]:
    """The canonical manifest document (also validates the matrix)."""
    entries: List[Dict[str, Any]] = []
    for ref in strategies:
        name, opts = ref if isinstance(ref, tuple) else (ref, None)
        fields_doc: Dict[str, Any] = {"name": name}
        if opts is not None:
            if opts.bus is not None and opts.bus != bus:
                raise CampaignError(
                    f"strategy {name!r} carries its own evaluator (bus) "
                    f"options; the fabric manifest holds one bus record "
                    f"for the whole matrix -- pass it as bus= instead"
                )
            fields_doc.update(strategy_options_to_fields(opts))
        entries.append(fields_doc)
    request = {
        "systems": {
            sid: system_to_dict(system) for sid, system in sorted(systems.items())
        },
        "strategies": entries,
        "budget": {"max_seconds": None, "max_evaluations": None},
    }
    campaign_doc = {
        "job_timeout": options.job_timeout,
        "max_retries": options.max_retries,
        "retry_backoff": options.retry_backoff,
        "retry_seed": options.retry_seed,
        "campaign_workers": options.campaign_workers,
    }
    return envelope(
        "fabric_manifest",
        {
            "request": request,
            "bus": bus_options_to_dict(bus) if bus is not None else None,
            "campaign": campaign_doc,
            "meta": dict(meta or {}),
        },
    )


def fabric_submit(
    root: str,
    systems: Mapping[str, System],
    strategies: Iterable[StrategyRef],
    *,
    bus=None,
    options: Optional[CampaignOptions] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> FabricSpec:
    """Write the job matrix to *root* as a fabric manifest.

    Submission is *idempotent and content-addressed*: resubmitting the
    identical campaign to an existing fabric directory is a no-op that
    returns the existing spec (so a restarted coordinator, or N racing
    coordinators, converge on one manifest), while submitting a
    *different* campaign to a non-empty fabric directory raises --
    workers must never see the matrix change under their leases.
    """
    ensure_writable_dir(root, flag="--fabric")
    if options is None:
        options = CampaignOptions()
    doc = _manifest_doc(systems, strategies, bus, options, meta)
    # Validate the matrix before anything lands on disk.
    spec = _decode_manifest(root, doc)
    manifest = os.path.join(root, MANIFEST_NAME)
    text = _canonical(doc) + "\n"
    if not _atomic_create(manifest, text):
        with open(manifest, encoding="utf-8") as fh:
            existing = fh.read()
        if existing != text:
            raise CampaignError(
                f"fabric directory {root!r} already holds a different "
                f"campaign (manifest digest "
                f"{_fabric_id(json.loads(existing))}, submitted "
                f"{spec.fabric_id}); point --fabric at a fresh directory"
            )
    for sub in _SUBDIRS:
        os.makedirs(os.path.join(root, sub), exist_ok=True)
    return spec


def load_fabric(root: str) -> FabricSpec:
    """Decode the manifest of an existing fabric directory."""
    manifest = os.path.join(root, MANIFEST_NAME)
    try:
        with open(manifest, encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        raise CampaignError(
            f"{root!r} is not a fabric directory (no {MANIFEST_NAME}); "
            f"submit a campaign there first (repro campaign --fabric)"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise CampaignError(f"unreadable fabric manifest {manifest}: {exc}") from exc
    return _decode_manifest(root, doc)


def _decode_manifest(root: str, doc: Dict[str, Any]) -> FabricSpec:
    from repro.service.protocol import parse_campaign_request

    try:
        body = parse_envelope(doc, "fabric_manifest")
        request = parse_campaign_request(body["request"])
        bus = bus_options_from_dict(body.get("bus"))
    except (SerializationError, ServiceError, KeyError) as exc:
        raise CampaignError(f"bad fabric manifest under {root!r}: {exc}") from exc
    campaign_doc = body.get("campaign") or {}
    try:
        options = CampaignOptions(**campaign_doc)
    except TypeError as exc:
        raise CampaignError(
            f"bad fabric manifest under {root!r}: {exc}"
        ) from exc
    jobs = campaign_matrix(request.systems, request.strategies, bus=bus)
    return FabricSpec(
        root=root,
        fabric_id=_fabric_id(doc),
        systems=request.systems,
        jobs=jobs,
        options=options,
        meta=dict(body.get("meta") or {}),
    )


# ----------------------------------------------------------------------
# leases
# ----------------------------------------------------------------------
def _lease_path(root: str, job_id: str) -> str:
    return os.path.join(root, "leases", f"{job_id}.lease")


def _read_lease(path: str) -> Optional[Dict[str, Any]]:
    """The lease document, or ``None`` when absent/unreadable.

    An unreadable lease cannot happen under the protocol (creates and
    renewals are both atomic-with-content); treating one as absent
    means a manually corrupted file merely makes the job claimable
    again, which the fingerprint checks keep safe.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return None


def _lease_doc(owner: str, ttl: float, beats: int) -> Dict[str, Any]:
    return {
        "owner": owner,
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "ttl": ttl,
        "beats": beats,
        "claimed_at": time.time(),
    }


def _lease_expired(path: str, ttl: float) -> bool:
    """Expiry by *file mtime*: renewals rewrite the file, so a lease
    untouched for a full ttl belongs to a worker that stopped
    heartbeating (died, or is stalled long enough to be presumed dead).
    On a shared filesystem the mtime comes from the file server, so
    workers on different hosts need no clock agreement beyond rate."""
    try:
        age = time.time() - os.stat(path).st_mtime
    except FileNotFoundError:
        return False
    return age > ttl


def _reap_lease(root: str, job_id: str, dead: Dict[str, Any]) -> bool:
    """Move an expired lease to a tombstone; ``True`` if we won.

    ``os.rename`` is the arbiter: however many workers notice the
    expiry simultaneously, exactly one rename succeeds and only that
    worker proceeds to claim.  Tombstones are kept (``.reaped.N``) as a
    forensic record of every takeover.
    """
    path = _lease_path(root, job_id)
    n = 1
    while os.path.exists(f"{path}.reaped.{n}"):
        n += 1
    try:
        os.rename(path, f"{path}.reaped.{n}")
        return True
    except (FileNotFoundError, OSError):
        return False


class _Heartbeat:
    """Renews one lease on a background thread until stopped.

    Renewal is check-then-replace: each beat re-reads the lease and
    *abandons* it (setting :attr:`lost`) if the file vanished or the
    owner changed -- a worker that was presumed dead and reaped must
    never write its stale lease back over the new owner's claim.
    """

    def __init__(self, path: str, owner: str, ttl: float):
        self.path = path
        self.owner = owner
        self.ttl = ttl
        self.lost = threading.Event()
        self._stop = threading.Event()
        self._beats = 0
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=f"lease-{os.path.basename(path)}"
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join()

    def _run(self) -> None:
        interval = max(self.ttl / 4.0, 0.05)
        while not self._stop.wait(interval):
            current = _read_lease(self.path)
            if current is None or current.get("owner") != self.owner:
                self.lost.set()
                return
            self._beats += 1
            doc = dict(current)
            doc["beats"] = self._beats
            doc["renewed_at"] = time.time()
            _atomic_write(self.path, json.dumps(doc, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# journal
# ----------------------------------------------------------------------
def _journal(root: str, worker_id: str, event: str, **fields: Any) -> None:
    """Append one event line to the worker's private journal.

    One append-only file *per worker* (no cross-process writes to the
    same file), so lines never interleave; readers merge by timestamp.
    """
    line = {"t": time.time(), "worker": worker_id, "event": event, **fields}
    path = os.path.join(root, "journal", f"{worker_id}.jsonl")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(line, sort_keys=True) + "\n")


def fabric_events(root: str) -> List[Dict[str, Any]]:
    """Every journal event of the fabric, merged in timestamp order."""
    journal_dir = os.path.join(root, "journal")
    events: List[Dict[str, Any]] = []
    if not os.path.isdir(journal_dir):
        return events
    for name in sorted(os.listdir(journal_dir)):
        if not name.endswith(".jsonl"):
            continue
        with open(os.path.join(journal_dir, name), encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    events.sort(key=lambda e: e.get("t", 0.0))
    return events


# ----------------------------------------------------------------------
# worker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerReport:
    """What one :func:`fabric_work` call did."""

    worker_id: str
    completed: Tuple[str, ...] = ()
    failed: Tuple[str, ...] = ()
    reaped: Tuple[str, ...] = ()
    lost: Tuple[str, ...] = ()


def default_worker_id() -> str:
    """``host-pid``: unique per process, readable in lease forensics."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _failure_path(root: str, job_id: str) -> str:
    return os.path.join(root, "failures", f"{job_id}.json")


def _checkpoint_published(spec: FabricSpec, job: CampaignJob) -> bool:
    return os.path.exists(
        os.path.join(spec.checkpoint_dir, f"{job.job_id}.json")
    )


def _job_settled(spec: FabricSpec, job: CampaignJob) -> bool:
    return _checkpoint_published(spec, job) or os.path.exists(
        _failure_path(spec.root, job.job_id)
    )


def fabric_work(
    root: str,
    *,
    worker_id: Optional[str] = None,
    lease_ttl: float = 30.0,
    poll: float = 0.5,
    max_jobs: Optional[int] = None,
    once: bool = False,
    log: Optional[Callable[[str], None]] = None,
) -> WorkerReport:
    """Drain jobs from a fabric directory until none remain claimable.

    Runs one job at a time (process-level parallelism is *more
    workers*, not threads inside one).  ``lease_ttl`` is how long a
    silent lease survives before other workers may presume this
    process dead and reap it -- it must comfortably exceed the worst
    filesystem stall, not the job duration (heartbeats renew every
    ``ttl/4``).  With ``once`` the worker returns as soon as no job is
    immediately claimable instead of polling every ``poll`` seconds
    for leases to expire; ``max_jobs`` bounds how many jobs this call
    may run.  Returns the worker's own accounting; the authoritative
    fabric-wide record is the journal (:func:`fabric_events`).
    """
    spec = load_fabric(root)
    if lease_ttl <= 0:
        raise CampaignError(f"lease_ttl={lease_ttl} must be > 0")
    if worker_id is None:
        worker_id = default_worker_id()
    worker_id = worker_id.replace("/", "_")
    say = log if log is not None else (lambda message: None)
    completed: List[str] = []
    failed: List[str] = []
    reaped: List[str] = []
    lost: List[str] = []

    while True:
        if max_jobs is not None and len(completed) + len(failed) >= max_jobs:
            break
        job = _claim_next(spec, worker_id, lease_ttl, reaped, say)
        if job is None:
            if once or all(_job_settled(spec, j) for j in spec.jobs):
                break
            time.sleep(poll)
            continue
        _journal(spec.root, worker_id, "claimed", job=job.job_id)
        say(f"[{worker_id}] claimed {job.job_id}")
        outcome = _execute_claim(spec, job, worker_id, lease_ttl)
        {"completed": completed, "failed": failed, "lost-lease": lost}[
            outcome
        ].append(job.job_id)
        say(f"[{worker_id}] {outcome} {job.job_id}")
    return WorkerReport(
        worker_id=worker_id,
        completed=tuple(completed),
        failed=tuple(failed),
        reaped=tuple(reaped),
        lost=tuple(lost),
    )


def _claim_next(
    spec: FabricSpec,
    worker_id: str,
    ttl: float,
    reaped: List[str],
    say: Callable[[str], None],
) -> Optional[CampaignJob]:
    """Claim the first open job in matrix order, reaping expired
    leases on the way; ``None`` when nothing is claimable right now."""
    for job in spec.jobs:
        if _job_settled(spec, job):
            continue
        path = _lease_path(spec.root, job.job_id)
        if os.path.exists(path):
            holder = _read_lease(path)
            # A corrupt lease (holder None despite the file existing)
            # cannot happen under the protocol -- creates and renewals
            # are both atomic-with-content -- so it means manual
            # tampering; reclaim it immediately rather than letting it
            # block its job forever.
            if holder is not None and not _lease_expired(
                path, float(holder.get("ttl", ttl))
            ):
                continue
            if not _reap_lease(spec.root, job.job_id, holder or {}):
                continue  # another worker won the takeover
            _journal(
                spec.root,
                worker_id,
                "reaped",
                job=job.job_id,
                dead_owner=(holder or {}).get("owner"),
                dead_beats=(holder or {}).get("beats"),
            )
            reaped.append(job.job_id)
            say(f"[{worker_id}] reaped dead lease of {job.job_id}")
        doc = json.dumps(_lease_doc(worker_id, ttl, beats=0), sort_keys=True)
        if _atomic_create(path, doc + "\n"):
            return job
    return None


def _execute_claim(
    spec: FabricSpec, job: CampaignJob, worker_id: str, ttl: float
) -> str:
    """Run one leased job to a published checkpoint or failure marker.

    Returns the journalled outcome: ``completed``, ``failed`` or
    ``lost-lease``.
    """
    lease = _lease_path(spec.root, job.job_id)
    staging = os.path.join(spec.root, "staging", f"{worker_id}__{job.job_id}")
    shutil.rmtree(staging, ignore_errors=True)  # stale own crash debris
    heartbeat = _Heartbeat(lease, worker_id, ttl)
    heartbeat.start()
    try:
        report = run_campaign(
            {job.system_id: spec.systems[job.system_id]},
            (job,),
            checkpoint_dir=staging,
            options=spec.options,
        )
    finally:
        heartbeat.stop()
    if heartbeat.lost.is_set():
        # We were presumed dead and reaped mid-job.  The new owner will
        # redo the work; publishing anyway could still be safe (the
        # os.link below keeps completion exactly-once) but discarding
        # keeps the accounting trivially clean.
        shutil.rmtree(staging, ignore_errors=True)
        _journal(spec.root, worker_id, "lost-lease", job=job.job_id)
        return "lost-lease"
    if job.job_id in report.failures:
        failure = report.failures[job.job_id]
        _atomic_write(
            _failure_path(spec.root, job.job_id),
            json.dumps(
                {
                    "job_id": failure.job_id,
                    "kind": failure.kind,
                    "message": failure.message,
                    "attempts": failure.attempts,
                    "worker": worker_id,
                },
                sort_keys=True,
            )
            + "\n",
        )
        shutil.rmtree(staging, ignore_errors=True)
        _release_lease(lease, worker_id)
        _journal(
            spec.root, worker_id, "failed", job=job.job_id, kind=failure.kind
        )
        return "failed"
    produced = os.path.join(staging, f"{job.job_id}.json")
    published = os.path.join(spec.checkpoint_dir, f"{job.job_id}.json")
    try:
        os.link(produced, published)  # the exactly-once serialisation point
        outcome = "completed"
    except FileExistsError:
        outcome = "lost-lease"
    shutil.rmtree(staging, ignore_errors=True)
    _release_lease(lease, worker_id)
    _journal(
        spec.root,
        worker_id,
        outcome,
        job=job.job_id,
        resumed=job.job_id in report.resumed,
    )
    return outcome


def _release_lease(path: str, owner: str) -> None:
    current = _read_lease(path)
    if current is not None and current.get("owner") == owner:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# status + collection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FabricStatus:
    """A point-in-time scan of a fabric directory."""

    fabric_id: str
    total: int
    done: Tuple[str, ...]
    failed: Tuple[str, ...]
    leased: Dict[str, str]  # job_id -> owner
    pending: Tuple[str, ...]

    @property
    def complete(self) -> bool:
        return len(self.done) + len(self.failed) == self.total

    def describe(self) -> str:
        return (
            f"fabric {self.fabric_id}: {len(self.done)}/{self.total} done, "
            f"{len(self.failed)} failed, {len(self.leased)} leased, "
            f"{len(self.pending)} pending"
        )


def fabric_status(root: str) -> FabricStatus:
    """Scan job states without claiming or mutating anything."""
    spec = load_fabric(root)
    done: List[str] = []
    failed: List[str] = []
    leased: Dict[str, str] = {}
    pending: List[str] = []
    for job in spec.jobs:
        if _checkpoint_published(spec, job):
            done.append(job.job_id)
        elif os.path.exists(_failure_path(spec.root, job.job_id)):
            failed.append(job.job_id)
        else:
            holder = _read_lease(_lease_path(spec.root, job.job_id))
            if holder is not None:
                leased[job.job_id] = str(holder.get("owner"))
            else:
                pending.append(job.job_id)
    return FabricStatus(
        fabric_id=spec.fabric_id,
        total=len(spec.jobs),
        done=tuple(done),
        failed=tuple(failed),
        leased=leased,
        pending=tuple(pending),
    )


def fabric_collect(
    root: str, *, require_complete: bool = True
) -> CampaignReport:
    """Merge published checkpoints into one campaign report.

    The merged report is what a sequential
    :func:`~repro.core.campaign.run_campaign` over the same matrix
    would return (modulo wall-clock fields, with every finished job
    listed as ``executed``): results load through the same
    fingerprint-validated checkpoint reader, in matrix order.  With
    ``require_complete`` (the default) an unfinished fabric raises
    instead of returning a partial sweep.
    """
    start = time.perf_counter()
    spec = load_fabric(root)
    results: Dict[str, Any] = {}
    executed: List[str] = []
    failures: Dict[str, CampaignJobFailure] = {}
    quarantined: List[str] = []
    missing: List[str] = []
    for job in spec.jobs:
        result, was_quarantined = _load_checkpoint(
            spec.checkpoint_dir, job, spec.systems[job.system_id]
        )
        if was_quarantined:
            quarantined.append(job.job_id)
        if result is not None:
            results[job.job_id] = result
            executed.append(job.job_id)
            continue
        marker = _failure_path(root, job.job_id)
        if os.path.exists(marker):
            with open(marker, encoding="utf-8") as fh:
                doc = json.load(fh)
            failures[job.job_id] = CampaignJobFailure(
                job_id=job.job_id,
                kind=str(doc.get("kind", "error")),
                message=str(doc.get("message", "")),
                attempts=int(doc.get("attempts", 1)),
            )
            continue
        missing.append(job.job_id)
    if missing and require_complete:
        raise CampaignError(
            f"fabric {spec.fabric_id} under {root!r} is incomplete: "
            f"{len(missing)} of {len(spec.jobs)} jobs unfinished "
            f"({', '.join(missing[:5])}{'...' if len(missing) > 5 else ''}); "
            f"run more workers (repro work {root}) or pass "
            f"require_complete=False for a partial report"
        )
    return CampaignReport(
        results=results,
        executed=tuple(executed),
        resumed=(),
        checkpoint_dir=spec.checkpoint_dir,
        elapsed_seconds=time.perf_counter() - start,
        failures=failures,
        quarantined=tuple(quarantined),
    )
