"""The unified search runtime: proposal protocol and search driver.

Every bus-access optimisation strategy in this repository -- BBC,
OBC/CF, OBC/EE, SA, GA and anything registered through
:mod:`repro.core.strategies` -- is a *proposal generator*: it yields
:class:`CandidateBatch` objects (configurations it wants analysed,
plus any interpolated cost estimates to record in the trace) and
receives the evaluated :class:`~repro.analysis.holistic.AnalysisResult`
list back at the ``yield``.  One :class:`SearchDriver` owns everything
around that conversation:

* **evaluation** -- every batch goes through
  :meth:`~repro.core.search.Evaluator.analyse_many`, so every strategy
  is batch-capable and rides the result cache, the dedup-within-batch
  logic and (when configured) the parallel process pool;
* **trace recording** -- exact points and estimates land in the
  evaluator's trace in proposal order, serial or parallel;
* **budgets** -- wall-clock and evaluation-count limits
  (:class:`~repro.core.strategies.StrategyOptions`) are enforced at
  batch boundaries; an exhausted budget closes the generator and
  finishes the run with ``stop_reason="budget"``;
* **deterministic best-selection** -- the driver folds every evaluated
  result with :func:`~repro.core.search.better` (strictly-lower cost
  wins, first occurrence wins ties) and discards an infeasible
  "best"; a strategy with a non-default selection rule (OBC's
  first-schedulable-hit semantics) *returns* its chosen result from
  the generator instead, which takes precedence;
* **resource lifetime** -- the evaluator is used as a context manager,
  so the parallel pool is released even when a strategy raises.

Early stopping is expressed by the generator simply returning: the
strategy sees every batch's results and encodes its own stopping rule
(e.g. Fig. 6 line 7's stop-at-first-schedulable), while the driver
guarantees the run also ends when a budget expires.

Determinism contract: at fixed options and seeds, a run is
byte-identical however the batches are scheduled -- serially, on the
process pool, or re-read from a warmed cache -- because the proposal
order is fixed before evaluation and ``analyse_many`` preserves it.
``tests/test_legacy_equivalence.py`` pins all five built-in strategies
byte-identical to their pre-runtime implementations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from repro.analysis.holistic import AnalysisResult
from repro.core.config import FlexRayConfig
from repro.core.result import OptimisationResult
from repro.core.search import Evaluator, better

#: Type of the conversation a strategy has with the driver: yields
#: batches, receives result lists, returns an optional explicit
#: best-selection (None delegates selection to the driver).
Proposals = Generator[
    "CandidateBatch", List[AnalysisResult], Optional[AnalysisResult]
]


@dataclass(frozen=True)
class CandidateBatch:
    """One round of the proposal protocol.

    ``configs`` are analysed (in order, deduplicated against the
    evaluator's cache) and their results sent back into the generator.
    ``estimates`` are interpolated (non-exact) cost points recorded in
    the search trace *before* the batch is evaluated -- the order the
    curve-fitting heuristic's trace semantics require.  A batch may
    carry only estimates (``configs == ()``); the generator then
    receives an empty result list.
    """

    configs: Tuple[FlexRayConfig, ...] = ()
    estimates: Tuple[Tuple[FlexRayConfig, float], ...] = ()


class SearchStrategy:
    """Base class of proposal strategies.

    Concrete strategies set ``algorithm`` (the label reported in
    :class:`~repro.core.result.OptimisationResult`), hold a
    :class:`~repro.core.strategies.StrategyOptions` (sub)instance in
    ``options``, and implement :meth:`proposals` as a generator.
    """

    #: Result label, e.g. ``"OBC/CF"``.
    algorithm: str = "?"

    def __init__(self, options=None):
        if options is None:
            from repro.core.strategies import StrategyOptions

            options = StrategyOptions()
        self.options = options

    def proposals(self, system) -> Proposals:
        """Yield :class:`CandidateBatch` objects for *system*.

        Receives the evaluated results of each batch at the ``yield``;
        may ``return`` an explicit best :class:`AnalysisResult` (or
        ``None`` to accept the driver's default selection).
        """
        raise NotImplementedError


def drive_with_evaluator(gen: Proposals, evaluator: Evaluator):
    """Run a proposal generator against an existing evaluator.

    The raw protocol loop without budgets or best-tracking: used by the
    legacy per-variant search entry points
    (:func:`repro.core.dynlen.curvefit_dyn_length`,
    :func:`repro.core.dynlen.exhaustive_dyn_length`) that operate on a
    caller-owned evaluator, and by :class:`SearchDriver` subgenerators
    through ``yield from``.  Returns the generator's return value.
    """
    results: Optional[List[AnalysisResult]] = None
    while True:
        try:
            batch = gen.send(results)
        except StopIteration as stop:
            return stop.value
        for config, cost in batch.estimates:
            evaluator.note_estimate(config, cost)
        results = evaluator.analyse_many(list(batch.configs))


class SearchDriver:
    """Run one strategy over one system and package the outcome.

    ``SearchDriver(system, strategy).run()`` is the single execution
    path of every optimiser: it owns the evaluator (and releases its
    pool via the context-manager protocol), enforces the strategy's
    budgets, folds the default best and builds the
    :class:`~repro.core.result.OptimisationResult`.
    """

    def __init__(self, system, strategy: SearchStrategy):
        self.system = system
        self.strategy = strategy

    def run(self) -> OptimisationResult:
        options = self.strategy.options
        start = time.perf_counter()
        best: Optional[AnalysisResult] = None
        selected: Optional[AnalysisResult] = None
        stop_reason: Optional[str] = None
        with Evaluator(self.system, options.bus_options()) as evaluator:
            gen = self.strategy.proposals(self.system)
            results: Optional[List[AnalysisResult]] = None
            while True:
                try:
                    batch = gen.send(results)
                except StopIteration as stop:
                    selected = stop.value
                    break
                if self._budget_exhausted(options, start, evaluator):
                    gen.close()
                    stop_reason = "budget"
                    break
                for config, cost in batch.estimates:
                    evaluator.note_estimate(config, cost)
                results = evaluator.analyse_many(list(batch.configs))
                for result in results:
                    if better(result, best):
                        best = result
            if selected is None:
                # Default deterministic selection: lowest cost, first
                # occurrence on ties; an infeasible best is no best.
                if best is not None and not best.feasible:
                    best = None
                selected = best
            return OptimisationResult(
                algorithm=self.strategy.algorithm,
                best=selected,
                evaluations=evaluator.evaluations,
                elapsed_seconds=time.perf_counter() - start,
                trace=tuple(evaluator.trace),
                cache_hits=evaluator.cache_hits,
                stop_reason=stop_reason,
            )

    @staticmethod
    def _budget_exhausted(options, start: float, evaluator: Evaluator) -> bool:
        if (
            options.max_seconds is not None
            and time.perf_counter() - start > options.max_seconds
        ):
            return True
        return (
            options.max_evaluations is not None
            and evaluator.evaluations >= options.max_evaluations
        )
