"""Newton-polynomial curve fitting (Section 6.2.1).

The OBC/CF heuristic analyses only a handful of DYN segment lengths
exactly and interpolates every message's response time at all other
lengths with a Newton polynomial -- "extremely fast, in particular when
recalculating the values after a new point has been added to the set
Points" (paper footnote 1).  The divided-difference form makes adding a
point an O(n) update.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import AnalysisError


class NewtonInterpolator:
    """Incremental Newton divided-difference interpolation.

    Stores the diagonal of the divided-difference table, so
    :meth:`add_point` costs O(n) and evaluation costs O(n).
    """

    def __init__(self, xs: Sequence[float] = (), ys: Sequence[float] = ()):
        if len(xs) != len(ys):
            raise AnalysisError("xs and ys must have equal length")
        self._xs: List[float] = []
        self._coeffs: List[float] = []  # Newton coefficients c0, c1, ...
        self._diag: List[float] = []  # last row of the dd table
        for x, y in zip(xs, ys):
            self.add_point(x, y)

    def __len__(self) -> int:
        return len(self._xs)

    @property
    def xs(self) -> List[float]:
        """Interpolation nodes added so far."""
        return list(self._xs)

    def add_point(self, x: float, y: float) -> None:
        """Add node (x, y); x must differ from all existing nodes."""
        if any(x == old for old in self._xs):
            raise AnalysisError(f"duplicate interpolation node x={x}")
        # Update the rising diagonal of the divided-difference table.
        new_diag = [float(y)]
        for k, prev in enumerate(self._diag):
            denom = x - self._xs[len(self._xs) - 1 - k]
            new_diag.append((new_diag[k] - prev) / denom)
        self._xs.append(float(x))
        self._diag = new_diag
        self._coeffs.append(new_diag[-1])

    def __call__(self, x: float) -> float:
        """Evaluate the interpolating polynomial at *x* (Horner form)."""
        if not self._xs:
            raise AnalysisError("cannot evaluate an empty interpolator")
        result = self._coeffs[-1]
        for k in range(len(self._coeffs) - 2, -1, -1):
            result = result * (x - self._xs[k]) + self._coeffs[k]
        return result


def spread_points(lo: int, hi: int, count: int) -> List[int]:
    """*count* distinct integers evenly spread over [lo, hi], inclusive.

    Used to seed the initial ``Points`` set of the OBC/CF heuristic
    (the paper used five).
    """
    if hi < lo:
        raise AnalysisError(f"empty range [{lo}, {hi}]")
    if count < 1:
        raise AnalysisError("count must be >= 1")
    if hi == lo:
        return [lo]
    count = min(count, hi - lo + 1)
    if count == 1:
        return [lo]
    step = (hi - lo) / (count - 1)
    points = {lo + round(i * step) for i in range(count)}
    return sorted(points)
