"""Task-mapping exploration around the bus optimiser (extension).

Section 6.2 of the paper motivates the OBC/CF heuristic's speed with
"the bus access optimisation heuristic can be placed inside other
optimisation loops, e.g. for task mapping".  This module provides that
outer loop: a hill-climbing search over task-to-node mappings that
invokes a (cheap) bus optimisation for every candidate mapping and
keeps the assignment with the best achievable cost.

Remapping a task can change which edges cross nodes, so the move
rebuilds the affected graph: a crossing edge becomes a message and a
now-local edge becomes a plain precedence (its payload is dropped,
matching the paper's model where intra-node communication is part of
the WCET).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.bbc import optimise_bbc
from repro.core.obc import optimise_obc
from repro.core.result import OptimisationResult
from repro.core.search import BusOptimisationOptions
from repro.errors import OptimisationError, ValidationError
from repro.model.application import Application
from repro.model.graph import TaskGraph
from repro.model.message import Message
from repro.model.system import System
from repro.model.task import Task


@dataclass(frozen=True)
class MappingOptions:
    """Budget and inner-optimiser selection for the mapping search."""

    iterations: int = 20
    seed: int = 13
    #: Inner bus optimiser: "bbc" (fast, the default for exploration) or
    #: "obc-cf" (slower, tighter).
    inner: str = "bbc"
    max_seconds: Optional[float] = None
    #: Default message payload (bytes) when a precedence edge starts
    #: crossing nodes after a move and needs a message.
    new_message_size: int = 8


@dataclass(frozen=True)
class MappingResult:
    """Outcome of the mapping exploration."""

    system: System
    bus: OptimisationResult
    moves_tried: int
    moves_accepted: int
    elapsed_seconds: float

    @property
    def cost(self) -> float:
        """Cost of the best (mapping, bus configuration) pair."""
        return self.bus.cost


def optimise_mapping(
    system: System,
    options: BusOptimisationOptions = None,
    mapping_options: MappingOptions = None,
) -> MappingResult:
    """Hill-climb over task mappings with a bus optimisation per step."""
    options = options or BusOptimisationOptions()
    mapping_options = mapping_options or MappingOptions()
    if mapping_options.inner not in ("bbc", "obc-cf"):
        raise OptimisationError(
            f"unknown inner optimiser {mapping_options.inner!r}"
        )
    start = time.perf_counter()
    rng = random.Random(mapping_options.seed)

    current = system
    current_bus = _inner(current, options, mapping_options)
    tried = accepted = 0

    for _ in range(mapping_options.iterations):
        if (
            mapping_options.max_seconds is not None
            and time.perf_counter() - start > mapping_options.max_seconds
        ):
            break
        candidate = _random_remap(current, rng, mapping_options)
        if candidate is None:
            continue
        tried += 1
        candidate_bus = _inner(candidate, options, mapping_options)
        if candidate_bus.cost < current_bus.cost:
            current, current_bus = candidate, candidate_bus
            accepted += 1

    return MappingResult(
        system=current,
        bus=current_bus,
        moves_tried=tried,
        moves_accepted=accepted,
        elapsed_seconds=time.perf_counter() - start,
    )


def _inner(system, options, mapping_options) -> OptimisationResult:
    if mapping_options.inner == "bbc":
        return optimise_bbc(system, options)
    return optimise_obc(system, options, method="curvefit")


def _random_remap(
    system: System, rng: random.Random, mapping_options: MappingOptions
) -> Optional[System]:
    """Move one random task to a random other node (None when illegal)."""
    tasks = sorted(system.application.tasks(), key=lambda t: t.name)
    task = tasks[rng.randrange(len(tasks))]
    targets = [n for n in system.nodes if n != task.node]
    if not targets:
        return None
    target = targets[rng.randrange(len(targets))]
    try:
        return remap_task(system, task.name, target, mapping_options)
    except ValidationError:
        return None


def remap_task(
    system: System,
    task_name: str,
    target_node: str,
    mapping_options: MappingOptions = None,
) -> System:
    """A copy of *system* with *task_name* mapped onto *target_node*.

    Messages touching the task are converted to precedences when they
    become node-local, and precedences touching it become messages when
    they start crossing nodes.
    """
    mapping_options = mapping_options or MappingOptions()
    if target_node not in system.nodes:
        raise OptimisationError(f"unknown node {target_node!r}")
    app = system.application
    graphs: List[TaskGraph] = []
    for g in app.graphs:
        if all(t.name != task_name for t in g.tasks):
            graphs.append(g)
            continue
        graphs.append(_rebuild_graph(g, task_name, target_node, mapping_options))
    return System(system.nodes, Application(app.name, tuple(graphs)))


def _rebuild_graph(
    graph: TaskGraph,
    task_name: str,
    target_node: str,
    mapping_options: MappingOptions,
) -> TaskGraph:
    node_of: Dict[str, str] = {t.name: t.node for t in graph.tasks}
    node_of[task_name] = target_node
    tasks = tuple(
        Task(
            name=t.name,
            wcet=t.wcet,
            node=node_of[t.name],
            policy=t.policy,
            priority=t.priority,
            release=t.release,
            deadline=t.deadline,
        )
        for t in graph.tasks
    )
    kind = None
    messages: List[Message] = []
    precedences: List[Tuple[str, str]] = list(graph.precedences)
    sizes: Dict[Tuple[str, str], int] = {}

    # Existing messages: keep, or collapse to precedence when now local.
    for m in graph.messages:
        kind = m.kind
        receiver = m.receivers[0]
        if node_of[m.sender] == node_of[receiver]:
            for r in m.receivers:
                precedences.append((m.sender, r))
        else:
            messages.append(m)
        sizes[(m.sender, receiver)] = m.size

    # Precedences that started crossing nodes become messages.
    still_local: List[Tuple[str, str]] = []
    for a, b in precedences:
        if node_of[a] == node_of[b]:
            still_local.append((a, b))
            continue
        if kind is None:
            # Graph had no messages yet: infer the kind from the policy.
            from repro.model.message import MessageKind

            kind = (
                MessageKind.ST if tasks[0].is_scs else MessageKind.DYN
            )
        messages.append(
            Message(
                name=f"{graph.name}_x_{a}__{b}",
                size=sizes.get((a, b), mapping_options.new_message_size),
                sender=a,
                receivers=(b,),
                kind=kind,
                priority=len(messages),
            )
        )
    return TaskGraph(
        name=graph.name,
        period=graph.period,
        deadline=graph.deadline,
        tasks=tasks,
        messages=tuple(messages),
        precedences=tuple(still_local),
    )
