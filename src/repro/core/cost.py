"""Schedulability-degree cost function (Eq. (5) of the paper).

    Cost = f1 = sum_i max(R_i - D_i, 0)   if f1 > 0   (some deadline missed)
         = f2 = sum_i (R_i - D_i)          if f1 = 0   (all deadlines met)

The function is strictly positive when at least one activity misses its
deadline and negative (more negative = more slack) when the system is
schedulable, which lets the optimisers keep improving a schedulable
solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import AnalysisError
from repro.model.application import Application


@dataclass(frozen=True)
class CostBreakdown:
    """Cost value plus diagnostic detail."""

    value: float
    schedulable: bool
    misses: int
    worst_violation: int
    total_slack: int

    def __float__(self) -> float:  # pragma: no cover - convenience
        return float(self.value)


def cost_function(
    application: Application, wcrt: Mapping[str, int]
) -> CostBreakdown:
    """Evaluate Eq. (5) over every activity of *application*.

    ``wcrt`` must contain a worst-case response time for every task and
    message; a missing entry raises :class:`AnalysisError` rather than
    silently treating the activity as schedulable.
    """
    f1 = 0
    f2 = 0
    misses = 0
    worst = 0
    for g in application.graphs:
        for name in g.topological_order():
            if name not in wcrt:
                raise AnalysisError(f"no response time for activity {name!r}")
            r = wcrt[name]
            d = application.deadline_of(name)
            diff = r - d
            f2 += diff
            if diff > 0:
                f1 += diff
                misses += 1
                worst = max(worst, diff)
    if f1 > 0:
        return CostBreakdown(
            value=float(f1),
            schedulable=False,
            misses=misses,
            worst_violation=worst,
            total_slack=-f2,
        )
    return CostBreakdown(
        value=float(f2),
        schedulable=True,
        misses=0,
        worst_violation=0,
        total_slack=-f2,
    )
