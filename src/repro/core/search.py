"""Shared machinery of the bus-access optimisers.

Holds the option record, the DYN segment bounds of Section 6.1, the
quota-based round-robin static slot assignment of Section 6.2, and the
evaluation bookkeeping (analysis counting + search traces) that the
experiments of Section 7 report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.holistic import AnalysisOptions, AnalysisResult, analyse_system
from repro.core.config import FlexRayConfig
from repro.core.result import SearchPoint
from repro.errors import OptimisationError
from repro.flexray import params
from repro.model.system import System
from repro.model.times import ceil_div


@dataclass(frozen=True)
class BusOptimisationOptions:
    """Knobs shared by BBC, OBC/EE, OBC/CF and SA.

    The paper explores the full protocol ranges (up to 1023 static slots,
    661 MT slots, 7994 minislots) but stops at the first schedulable
    configuration; the ``max_*`` fields bound the exploration so runs
    stay laptop-sized, and can be raised for paper-scale experiments.
    """

    analysis: AnalysisOptions = field(default_factory=AnalysisOptions)
    gd_minislot: int = params.DEFAULT_GD_MINISLOT
    bits_per_mt: int = params.DEFAULT_BITS_PER_MT
    frame_overhead_bytes: int = params.DEFAULT_FRAME_OVERHEAD_BYTES
    #: BBC evaluates at most this many DYN lengths in its single sweep.
    max_dyn_points: int = 48
    #: OBC/EE sweep resolution: the paper analyses every gdMinislot step;
    #: this cap keeps runs laptop-sized while staying dense enough to find
    #: narrow schedulable windows.  Raise towards MAX_MINISLOTS for
    #: paper-exact exhaustive exploration.
    ee_max_dyn_points: int = 1024
    #: OBC/CF: exactly analysed seed points (the paper used five).
    initial_cf_points: int = 5
    #: OBC/CF: interpolation grid resolution (candidate lengths per round).
    cf_candidates: int = 256
    #: OBC/CF: Nmax -- rounds without improvement before giving up.
    cf_max_rounds: int = 10
    #: OBC/CF: hard cap on the exactly-analysed point set.  Newton
    #: interpolation over more than ~2 dozen nodes is numerically useless
    #: and each round costs one full analysis, so the refinement stops
    #: here even while the cost still creeps down.
    cf_max_points: int = 24
    #: OBC: extra static slots explored beyond the per-sender minimum.
    max_extra_static_slots: int = 3
    #: OBC: slot-size increments of 2 MT explored beyond the minimum.
    max_slot_size_steps: int = 6
    #: Stop as soon as a schedulable configuration is found (Fig. 6 line 7).
    stop_when_schedulable: bool = True


class Evaluator:
    """Counts exact analyses and accumulates the search trace."""

    def __init__(self, system: System, options: BusOptimisationOptions):
        self.system = system
        self.options = options
        self.evaluations = 0
        self.trace: List[SearchPoint] = []
        self._cache: Dict[tuple, AnalysisResult] = {}

    def analyse(self, config: FlexRayConfig) -> AnalysisResult:
        """Full scheduling + holistic analysis of one configuration."""
        key = config.cache_key()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = analyse_system(self.system, config, self.options.analysis)
        self.evaluations += 1
        self._cache[key] = result
        self.trace.append(
            SearchPoint(
                n_static_slots=config.n_static_slots,
                gd_static_slot=config.gd_static_slot,
                n_minislots=config.n_minislots,
                cost=result.cost_value,
                schedulable=result.schedulable,
                exact=True,
            )
        )
        return result

    def note_estimate(self, config: FlexRayConfig, cost: float) -> None:
        """Record an interpolated (non-exact) point in the trace."""
        self.trace.append(
            SearchPoint(
                n_static_slots=config.n_static_slots,
                gd_static_slot=config.gd_static_slot,
                n_minislots=config.n_minislots,
                cost=cost,
                schedulable=cost <= 0,
                exact=False,
            )
        )


def better(a: Optional[AnalysisResult], b: Optional[AnalysisResult]) -> bool:
    """True when *a* is a strictly better outcome than *b*."""
    if a is None:
        return False
    if b is None:
        return True
    return a.cost_value < b.cost_value


def message_ct(size: int, options: BusOptimisationOptions) -> int:
    """Transmission time of a payload under the optimiser's bus settings."""
    return ceil_div((size + options.frame_overhead_bytes) * 8, options.bits_per_mt)


def min_static_slot(system: System, options: BusOptimisationOptions) -> int:
    """Smallest legal static slot: fits the largest ST frame (Fig. 5 line 3)."""
    largest = max(
        (message_ct(m.size, options) for m in system.application.st_messages()),
        default=1,
    )
    return min(largest, params.MAX_STATIC_SLOT_MT)


def dyn_segment_bounds(
    system: System, st_bus: int, options: BusOptimisationOptions
) -> Tuple[int, int]:
    """[DYNbus_min, DYNbus_max] in minislots (Fig. 5 line 5).

    The segment must fit the largest DYN frame, must offer one slot per
    DYN message (unique FrameIDs), and the whole cycle must respect the
    protocol's 16 ms limit.  Returns (0, 0) when the application has no
    DYN messages and (1, 0) -- an empty range -- when no legal length
    exists.
    """
    dyn_messages = list(system.application.dyn_messages())
    if not dyn_messages:
        return (0, 0)
    largest = max(
        ceil_div(message_ct(m.size, options), options.gd_minislot)
        for m in dyn_messages
    )
    # With unique FrameIDs the highest slot is len(dyn_messages); for the
    # largest frame to be transmittable even from that slot, the segment
    # needs the slot-counter offset *plus* the frame length (pLatestTx).
    lo = largest + len(dyn_messages) - 1
    hi = min(
        params.MAX_MINISLOTS,
        (params.MAX_CYCLE_MT - st_bus) // options.gd_minislot,
    )
    return (lo, hi)


def sweep_lengths(lo: int, hi: int, max_points: int) -> List[int]:
    """At most *max_points* DYN lengths covering [lo, hi], ends included."""
    if hi < lo:
        return []
    if max_points < 1:
        raise OptimisationError("max_points must be >= 1")
    span = hi - lo
    if span + 1 <= max_points:
        return list(range(lo, hi + 1))
    if max_points == 1:
        return [lo]
    out = sorted({lo + round(i * span / (max_points - 1)) for i in range(max_points)})
    return out


def quota_slot_assignment(
    system: System, n_slots: int, options: BusOptimisationOptions = None
) -> Tuple[str, ...]:
    """Static slot owners for *n_slots* slots, round-robin with quotas.

    Every ST-sending node gets at least one slot; surplus slots are
    distributed proportionally to the number of ST messages each node
    transmits (Section 6.2: "a node that sends more ST messages will be
    allocated more ST slots"), then interleaved round-robin.
    """
    nodes = system.st_sender_nodes()
    if not nodes:
        return ()
    if n_slots < len(nodes):
        raise OptimisationError(
            f"{n_slots} static slots cannot cover {len(nodes)} ST-sending nodes"
        )
    counts = {
        node: sum(1 for m in system.messages_sent_by(node) if m.is_static)
        for node in nodes
    }
    total = sum(counts.values())
    quotas = {node: 1 for node in nodes}
    surplus = n_slots - len(nodes)
    if surplus and total:
        shares = [
            (counts[node] * surplus / total, node) for node in nodes
        ]
        given = 0
        for share, node in shares:
            extra = int(share)
            quotas[node] += extra
            given += extra
        # distribute the rounding remainder by largest fractional share
        remainder = sorted(
            ((share - int(share), node) for share, node in shares), reverse=True
        )
        for _, node in remainder[: surplus - given]:
            quotas[node] += 1
    order: List[str] = []
    remaining = dict(quotas)
    while len(order) < n_slots:
        for node in nodes:
            if remaining[node] > 0:
                order.append(node)
                remaining[node] -= 1
    return tuple(order)
