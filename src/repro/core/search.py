"""Shared machinery of the bus-access optimisers.

Holds the option record, the DYN segment bounds of Section 6.1, the
quota-based round-robin static slot assignment of Section 6.2, and the
evaluation bookkeeping (analysis counting + search traces) that the
experiments of Section 7 report.
"""

from __future__ import annotations

import dataclasses
import logging
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.analysis.context import AnalysisContext
from repro.analysis.holistic import AnalysisOptions, AnalysisResult
from repro.core.config import FlexRayConfig
from repro.core.result import SearchPoint
from repro.errors import OptimisationError
from repro.flexray import params
from repro.model.system import System
from repro.model.times import ceil_div

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class BusOptimisationOptions:
    """Knobs shared by BBC, OBC/EE, OBC/CF and SA.

    The paper explores the full protocol ranges (up to 1023 static slots,
    661 MT slots, 7994 minislots) but stops at the first schedulable
    configuration; the ``max_*`` fields bound the exploration so runs
    stay laptop-sized, and can be raised for paper-scale experiments.
    """

    #: Analysis tunables forwarded to every evaluation; the default
    #: enables the certified warm-start fast path (bit-identical to the
    #: cold oracle -- see :class:`~repro.analysis.holistic.AnalysisOptions`).
    analysis: AnalysisOptions = field(default_factory=AnalysisOptions)
    #: Minislot length in macroticks (protocol default).
    gd_minislot: int = params.DEFAULT_GD_MINISLOT
    bits_per_mt: int = params.DEFAULT_BITS_PER_MT
    frame_overhead_bytes: int = params.DEFAULT_FRAME_OVERHEAD_BYTES
    #: BBC evaluates at most this many DYN lengths in its single sweep.
    max_dyn_points: int = 48
    #: OBC/EE sweep resolution: the paper analyses every gdMinislot step;
    #: this cap keeps runs laptop-sized while staying dense enough to find
    #: narrow schedulable windows.  Raise towards MAX_MINISLOTS for
    #: paper-exact exhaustive exploration.
    ee_max_dyn_points: int = 1024
    #: OBC/CF: exactly analysed seed points (the paper used five).
    initial_cf_points: int = 5
    #: OBC/CF: interpolation grid resolution (candidate lengths per round).
    cf_candidates: int = 256
    #: OBC/CF: Nmax -- rounds without improvement before giving up.
    cf_max_rounds: int = 10
    #: OBC/CF: hard cap on the exactly-analysed point set.  Newton
    #: interpolation over more than ~2 dozen nodes is numerically useless
    #: and each round costs one full analysis, so the refinement stops
    #: here even while the cost still creeps down.
    cf_max_points: int = 24
    #: OBC: extra static slots explored beyond the per-sender minimum.
    max_extra_static_slots: int = 3
    #: OBC: slot-size increments of 2 MT explored beyond the minimum.
    max_slot_size_steps: int = 6
    #: Stop as soon as a schedulable configuration is found (Fig. 6 line 7).
    stop_when_schedulable: bool = True
    #: Result-cache bound (LRU).  Long SA/GA runs over large design
    #: spaces would otherwise hold every AnalysisResult ever produced;
    #: ``None`` keeps the cache unbounded, ``0`` disables retention
    #: entirely (every analyse call is exact).
    max_cache_entries: Optional[int] = 4096
    #: Opt-in parallel candidate evaluation: number of worker processes
    #: used by :meth:`Evaluator.analyse_many` (GA generations, SA
    #: restarts, the BBC/OBC-EE sweeps, chunked OBC prefetches).
    #: ``None``/``1`` evaluates serially; results and traces are
    #: identical either way (the batch order is fixed before fan-out and
    #: the pool preserves it).
    parallel_workers: Optional[int] = None
    #: Chunked OBC outer loop: number of static-segment variants whose
    #: initial candidate sets (the full OBC/EE sweep, the OBC/CF seed
    #: points) are prefetched through one :meth:`Evaluator.analyse_many`
    #: batch before the variants are searched in order.  Static variants
    #: are mutually independent until the first schedulable hit, so the
    #: chunk races them through the parallel pool; the hit is then
    #: resolved deterministically in serial variant order, making runs
    #: byte-identical serial vs. parallel at a fixed chunk size.  The
    #: default ``1`` is the exact Fig. 6 loop; with
    #: ``stop_when_schedulable`` a larger chunk may evaluate (and record
    #: in the trace) candidates of variants past the stopping one --
    #: that is the admission price of racing the outer loop.
    obc_chunk_size: int = 1


@dataclass(frozen=True)
class EvaluatorStats:
    """A point-in-time snapshot of one evaluator's accounting.

    Taken by :meth:`Evaluator.stats`; two snapshots subtract into the
    work one request cost (:meth:`since`), which is how the service
    layer (:mod:`repro.service`) reports per-request exact-analysis and
    cache-hit counts for a pooled evaluator that many requests share.
    """

    evaluations: int
    cache_hits: int
    cache_entries: int
    trace_points: int

    def since(self, earlier: "EvaluatorStats") -> "EvaluatorStats":
        """The accounting delta from *earlier* to this snapshot."""
        return EvaluatorStats(
            evaluations=self.evaluations - earlier.evaluations,
            cache_hits=self.cache_hits - earlier.cache_hits,
            cache_entries=self.cache_entries,
            trace_points=self.trace_points - earlier.trace_points,
        )


#: Per-process warm context of the parallel evaluation pool workers.
_POOL_CONTEXT: List[AnalysisContext] = []


def _pool_initializer(system: System, analysis: AnalysisOptions) -> None:
    _POOL_CONTEXT.clear()
    _POOL_CONTEXT.append(AnalysisContext(system, analysis))


def _pool_analyse(item: Tuple[FlexRayConfig, bool]) -> AnalysisResult:
    config, strip_table = item
    result = _POOL_CONTEXT[0].analyse(config)
    if strip_table and result.table is not None:
        # The schedule table dominates the result pickle; when the
        # parent already holds this static segment in its schedule
        # cache it re-attaches an identical table for free.
        result = dataclasses.replace(result, table=None)
    return result


class Evaluator:
    """Counts exact analyses and accumulates the search trace.

    Owns the warm :class:`~repro.analysis.context.AnalysisContext` of the
    run (the incremental analysis engine), an LRU-bounded result cache
    with separate hit accounting, and the opt-in parallel evaluation
    pool.  ``evaluations`` counts exact analyses only -- cache hits are
    reported in ``cache_hits`` -- so the paper's evaluation-count
    comparisons stay exact whether or not candidates are batched.

    Determinism guarantees (all pinned by tests):

    * :meth:`analyse` and :meth:`analyse_many` produce results
      bit-identical to a fresh ``analyse_system`` call per
      configuration;
    * :meth:`analyse_many` preserves order, evaluation counts and trace
      order whether it runs serially or on the pool
      (``options.parallel_workers``), so fixed-seed optimiser runs are
      byte-identical either way;
    * a broken pool degrades to the serial path with identical results.

    The evaluator is a context manager: ``with Evaluator(...) as ev:``
    guarantees :meth:`close` runs (releasing the process pool) on every
    exit path.  The search runtime
    (:class:`~repro.core.runtime.SearchDriver`) and the campaign layer
    always use it that way; call :meth:`close` yourself only when
    holding an evaluator open across several runs.
    """

    def __init__(self, system: System, options: BusOptimisationOptions):
        self.system = system
        self.options = options
        self.evaluations = 0
        self.cache_hits = 0
        self.trace: List[SearchPoint] = []
        self.context = AnalysisContext(system, options.analysis)
        self._cache: "OrderedDict[tuple, AnalysisResult]" = OrderedDict()
        self._executor = None
        self._parallel_broken = False

    def analyse(self, config: FlexRayConfig) -> AnalysisResult:
        """Full scheduling + holistic analysis of one configuration."""
        key = config.cache_key()
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            self._cache.move_to_end(key)
            return cached
        result = self.context.analyse(config)
        self._record(key, config, result)
        return result

    def analyse_many(
        self, configs: Iterable[FlexRayConfig]
    ) -> List[AnalysisResult]:
        """Analyse a batch of configurations, preserving order.

        Semantically identical to calling :meth:`analyse` per
        configuration in sequence -- same results, same evaluation
        count, same trace order, same cache-hit accounting -- but
        distinct uncached candidates are evaluated on the parallel pool
        when ``options.parallel_workers`` asks for one.
        """
        configs = list(configs)
        results: List[Optional[AnalysisResult]] = [None] * len(configs)
        pending: "OrderedDict[tuple, List[int]]" = OrderedDict()
        for i, config in enumerate(configs):
            key = config.cache_key()
            cached = self._cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                self._cache.move_to_end(key)
                results[i] = cached
            elif key in pending:
                # Duplicate within the batch: the serial order would hit
                # the cache filled by the first occurrence.
                self.cache_hits += 1
                pending[key].append(i)
            else:
                pending[key] = [i]
        if pending:
            items = list(pending.items())
            unique = [configs[indices[0]] for _, indices in items]
            computed = self._map(unique)
            for (key, indices), result in zip(items, computed):
                self._record(key, configs[indices[0]], result)
                for i in indices:
                    results[i] = result
        return results

    def stats(self) -> EvaluatorStats:
        """Snapshot the evaluator's accounting (see :class:`EvaluatorStats`)."""
        return EvaluatorStats(
            evaluations=self.evaluations,
            cache_hits=self.cache_hits,
            cache_entries=len(self._cache),
            trace_points=len(self.trace),
        )

    def close(self) -> None:
        """Shut down the parallel evaluation pool, if one was started."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "Evaluator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _record(
        self, key: tuple, config: FlexRayConfig, result: AnalysisResult
    ) -> None:
        self.evaluations += 1
        self._cache[key] = result
        bound = self.options.max_cache_entries
        if bound is not None:
            limit = max(bound, 0)
            while len(self._cache) > limit:
                self._cache.popitem(last=False)
        self.trace.append(
            SearchPoint(
                n_static_slots=config.n_static_slots,
                gd_static_slot=config.gd_static_slot,
                n_minislots=config.n_minislots,
                cost=result.cost_value,
                schedulable=result.schedulable,
                exact=True,
            )
        )

    def _map(self, configs: List[FlexRayConfig]) -> List[AnalysisResult]:
        """Evaluate distinct configurations, parallel when requested."""
        workers = self.options.parallel_workers or 0
        if workers > 1 and len(configs) > 1 and not self._parallel_broken:
            pool = self._ensure_pool(workers)
            if pool is not None:
                # Workers strip the heavy schedule table from the
                # result pickle only when the parent can re-attach an
                # identical one cheaply: the key is already in the
                # parent's tier-(b) cache, or an earlier candidate of
                # this batch shares it (one parent-side rebuild then
                # serves the whole group).  Candidates with a unique,
                # uncached key -- an ST-sending sweep, where every
                # cycle length means a distinct schedule -- ship the
                # table back instead of being rebuilt serially here.
                seen_keys = set()
                items = []
                for config in configs:
                    key = self.context.schedule_key(config)
                    strip = (
                        key in seen_keys
                        or self.context.has_schedule_for(config)
                    )
                    seen_keys.add(key)
                    items.append((config, strip))
                try:
                    chunksize = max(1, len(configs) // (workers * 4))
                    mapped = list(
                        pool.map(_pool_analyse, items, chunksize=chunksize)
                    )
                except Exception as exc:
                    # Broken pool / unpicklable payload: degrade to the
                    # serial path (identical results) for the whole run.
                    logger.warning(
                        "parallel evaluation pool failed mid-batch "
                        "(%s: %s); re-running this batch of %d "
                        "candidate(s) serially and disabling the pool "
                        "for the rest of the run -- results are "
                        "identical, only slower. A worker process may "
                        "have died (OOM-killed?) or the payload may "
                        "not be picklable; rerun without --workers to "
                        "avoid the pool entirely.",
                        type(exc).__name__,
                        exc,
                        len(configs),
                    )
                    self._parallel_broken = True
                    self.close()
                else:
                    results = []
                    for config, result in zip(configs, mapped):
                        if result.feasible and result.table is None:
                            result = dataclasses.replace(
                                result,
                                table=self.context.schedule_table_for(config),
                            )
                        results.append(result)
                    return results
        # Serial path: the context's batch entry point -- a plain
        # per-candidate loop on the Python backend, lockstep array
        # groups on the numpy backend (bit-identical either way).
        return self.context.analyse_batch(configs)

    def _ensure_pool(self, workers: int):
        if self._executor is None:
            try:
                from concurrent.futures import ProcessPoolExecutor

                self._executor = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_pool_initializer,
                    initargs=(self.system, self.options.analysis),
                )
            except Exception as exc:
                logger.warning(
                    "could not start the parallel evaluation pool "
                    "(%s: %s); evaluating serially instead -- results "
                    "are identical, only slower.",
                    type(exc).__name__,
                    exc,
                )
                self._parallel_broken = True
                return None
        return self._executor

    def note_estimate(self, config: FlexRayConfig, cost: float) -> None:
        """Record an interpolated (non-exact) point in the trace."""
        self.trace.append(
            SearchPoint(
                n_static_slots=config.n_static_slots,
                gd_static_slot=config.gd_static_slot,
                n_minislots=config.n_minislots,
                cost=cost,
                schedulable=cost <= 0,
                exact=False,
            )
        )


def better(a: Optional[AnalysisResult], b: Optional[AnalysisResult]) -> bool:
    """True when *a* is a strictly better outcome than *b*."""
    if a is None:
        return False
    if b is None:
        return True
    return a.cost_value < b.cost_value


def message_ct(size: int, options: BusOptimisationOptions) -> int:
    """Transmission time of a payload under the optimiser's bus settings."""
    return ceil_div((size + options.frame_overhead_bytes) * 8, options.bits_per_mt)


def min_static_slot(system: System, options: BusOptimisationOptions) -> int:
    """Smallest legal static slot: fits the largest ST frame (Fig. 5 line 3)."""
    largest = max(
        (message_ct(m.size, options) for m in system.application.st_messages()),
        default=1,
    )
    return min(largest, params.MAX_STATIC_SLOT_MT)


def dyn_segment_bounds(
    system: System, st_bus: int, options: BusOptimisationOptions
) -> Tuple[int, int]:
    """[DYNbus_min, DYNbus_max] in minislots (Fig. 5 line 5).

    The segment must fit the largest DYN frame, must offer one slot per
    DYN message (unique FrameIDs), and the whole cycle must respect the
    protocol's 16 ms limit.  Returns (0, 0) when the application has no
    DYN messages and (1, 0) -- an empty range -- when no legal length
    exists.
    """
    dyn_messages = list(system.application.dyn_messages())
    if not dyn_messages:
        return (0, 0)
    largest = max(
        ceil_div(message_ct(m.size, options), options.gd_minislot)
        for m in dyn_messages
    )
    # With unique FrameIDs the highest slot is len(dyn_messages); for the
    # largest frame to be transmittable even from that slot, the segment
    # needs the slot-counter offset *plus* the frame length (pLatestTx).
    lo = largest + len(dyn_messages) - 1
    hi = min(
        params.MAX_MINISLOTS,
        (params.MAX_CYCLE_MT - st_bus) // options.gd_minislot,
    )
    return (lo, hi)


def sweep_lengths(lo: int, hi: int, max_points: int) -> List[int]:
    """At most *max_points* DYN lengths covering [lo, hi], ends included."""
    if hi < lo:
        return []
    if max_points < 1:
        raise OptimisationError("max_points must be >= 1")
    span = hi - lo
    if span + 1 <= max_points:
        return list(range(lo, hi + 1))
    if max_points == 1:
        return [lo]
    out = sorted({lo + round(i * span / (max_points - 1)) for i in range(max_points)})
    return out


def quota_slot_assignment(
    system: System, n_slots: int, options: BusOptimisationOptions = None
) -> Tuple[str, ...]:
    """Static slot owners for *n_slots* slots, round-robin with quotas.

    Every ST-sending node gets at least one slot; surplus slots are
    distributed proportionally to the number of ST messages each node
    transmits (Section 6.2: "a node that sends more ST messages will be
    allocated more ST slots"), then interleaved round-robin.
    """
    nodes = system.st_sender_nodes()
    if not nodes:
        return ()
    if n_slots < len(nodes):
        raise OptimisationError(
            f"{n_slots} static slots cannot cover {len(nodes)} ST-sending nodes"
        )
    counts = {
        node: sum(1 for m in system.messages_sent_by(node) if m.is_static)
        for node in nodes
    }
    total = sum(counts.values())
    quotas = {node: 1 for node in nodes}
    surplus = n_slots - len(nodes)
    if surplus and total:
        shares = [
            (counts[node] * surplus / total, node) for node in nodes
        ]
        given = 0
        for share, node in shares:
            extra = int(share)
            quotas[node] += extra
            given += extra
        # distribute the rounding remainder by largest fractional share
        remainder = sorted(
            ((share - int(share), node) for share, node in shares), reverse=True
        )
        for _, node in remainder[: surplus - given]:
            quotas[node] += 1
    order: List[str] = []
    remaining = dict(quotas)
    while len(order) < n_slots:
        for node in nodes:
            if remaining[node] > 0:
                order.append(node)
                remaining[node] -= 1
    return tuple(order)
