"""Criticality-driven FrameID assignment (Fig. 5, line 1 / Eq. (4)).

Every DYN message receives a unique FrameID (avoiding hp(m) delays);
messages with higher criticality -- smaller CP_m = D_m - LP_m, where
LP_m is the longest path from the graph root up to the message -- get
smaller FrameIDs so they suffer less lf(m)/ms(m) interference.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.flexray import params
from repro.model.system import System
from repro.model.times import ceil_div


def message_criticalities(
    system: System,
    bits_per_mt: int = params.DEFAULT_BITS_PER_MT,
    frame_overhead_bytes: int = params.DEFAULT_FRAME_OVERHEAD_BYTES,
) -> Dict[str, int]:
    """CP_m = D_m - LP_m per DYN message; smaller = more critical."""
    app = system.application
    costs = {
        m.name: ceil_div((m.size + frame_overhead_bytes) * 8, bits_per_mt)
        for m in app.messages()
    }
    crit: Dict[str, int] = {}
    for m in app.dyn_messages():
        g = app.graph_of(m.name)
        lp = g.longest_path_to(m.name, costs)
        crit[m.name] = app.deadline_of(m.name) - lp
    return crit


def assign_frame_ids(
    system: System,
    bits_per_mt: int = params.DEFAULT_BITS_PER_MT,
    frame_overhead_bytes: int = params.DEFAULT_FRAME_OVERHEAD_BYTES,
) -> Dict[str, int]:
    """Unique FrameIDs 1..n, most critical message first.

    Ties are broken by name for determinism.  The implied DYN
    slot-to-node assignment follows from the messages' sender nodes.
    """
    crit = message_criticalities(system, bits_per_mt, frame_overhead_bytes)
    ordered: List[Tuple[int, str]] = sorted(
        (cp, name) for name, cp in crit.items()
    )
    return {name: fid for fid, (_, name) in enumerate(ordered, start=1)}
