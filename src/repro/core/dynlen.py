"""Determining the DYN segment length (Section 6.2.1, Fig. 8).

Two strategies, both searching ``n_minislots`` in the legal range for a
fixed static-segment structure:

* :func:`exhaustive_proposals` -- analyse every candidate (OBC/EE);
* :func:`curvefit_proposals` -- the paper's heuristic: analyse a small
  seed set exactly, Newton-interpolate every activity's response time
  over the whole range, and only analyse the most promising candidates
  until a schedulable one is confirmed or Nmax rounds bring no
  improvement (OBC/CF).

Both are written against the proposal protocol of
:mod:`repro.core.runtime`: they yield
:class:`~repro.core.runtime.CandidateBatch` objects and receive the
evaluated results, so the OBC strategy composes them with ``yield
from`` and the search driver owns evaluation.  The legacy entry points
:func:`exhaustive_dyn_length` / :func:`curvefit_dyn_length` drive the
same generators against a caller-owned
:class:`~repro.core.search.Evaluator` -- one implementation, two
calling conventions.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.analysis.holistic import AnalysisResult
from repro.core.config import FlexRayConfig
from repro.core.cost import cost_function
from repro.core.curvefit import NewtonInterpolator, spread_points
from repro.core.runtime import CandidateBatch, Proposals, drive_with_evaluator
from repro.core.search import (
    BusOptimisationOptions,
    Evaluator,
    better,
    sweep_lengths,
)
from repro.model.system import System


def ee_sweep_lengths(lo, hi, options, max_points: Optional[int] = None):
    """The DYN lengths OBC/EE analyses for one static variant.

    Shared between :func:`exhaustive_proposals` and the chunked OBC
    prefetch (``repro.core.obc``) so the prefetched batch always equals
    the search's candidate set.
    """
    if max_points is None:
        max_points = options.ee_max_dyn_points
    return sweep_lengths(lo, hi, max_points)


def cf_seed_lengths(lo, hi, options):
    """The exactly-analysed OBC/CF seed lengths (Fig. 8 lines 1-5).

    Shared between :func:`curvefit_proposals` and the chunked OBC
    prefetch so the prefetched batch always equals the search's first
    exact points.
    """
    return spread_points(lo, hi, options.initial_cf_points)


def exhaustive_proposals(
    options: BusOptimisationOptions,
    template: FlexRayConfig,
    lo: int,
    hi: int,
    max_points: Optional[int] = None,
) -> Proposals:
    """Best configuration over all DYN lengths in [lo, hi] (OBC/EE).

    ``max_points`` caps the sweep resolution; ``None`` uses the
    options' value (the paper analyses every gdMinislot step, which is
    the configuration ``max_points >= hi - lo + 1``).
    """
    best: Optional[AnalysisResult] = None
    # One batch: the sweep shares the evaluator's warm AnalysisContext
    # and fans out over the parallel pool when one is configured; the
    # first-best selection below matches the serial iteration order.
    configs = [
        template.with_dyn_length(n)
        for n in ee_sweep_lengths(lo, hi, options, max_points)
    ]
    if not configs:
        return None
    results = yield CandidateBatch(tuple(configs))
    for result in results:
        if better(result, best):
            best = result
    return best


def curvefit_proposals(
    system: System,
    options: BusOptimisationOptions,
    template: FlexRayConfig,
    lo: int,
    hi: int,
) -> Proposals:
    """The curve-fitting heuristic of Fig. 8 (OBC/CF)."""
    if hi < lo:
        return None

    exact: Dict[int, AnalysisResult] = {}
    interpolators: Dict[str, NewtonInterpolator] = {}

    def record_point(n: int, result: AnalysisResult) -> None:
        exact[n] = result
        if result.feasible:
            for name, r in result.wcrt.items():
                interpolators.setdefault(name, NewtonInterpolator()).add_point(n, r)

    # Line 1-5: seed points, analysed exactly.  The seeds are mutually
    # independent, so they go out as one batch: they share the
    # evaluator's result cache and fan out over the parallel pool when
    # one is configured.  Batching unconditionally forfeits the old
    # stop-at-first-schedulable-seed early exit (rare: it only fired
    # when the very first exact points were already schedulable), but
    # keeps serial and parallel runs byte-identical -- branching on
    # ``parallel_workers`` here would make their evaluation counts and
    # traces diverge.
    seed_lengths = cf_seed_lengths(lo, hi, options)
    seed_results = yield CandidateBatch(
        tuple(template.with_dyn_length(n) for n in seed_lengths)
    )
    for n, result in zip(seed_lengths, seed_results):
        record_point(n, result)
        if result.schedulable and options.stop_when_schedulable:
            return result

    candidates = sweep_lengths(lo, hi, options.cf_candidates)
    best_exact_cost = _best_exact_cost(exact)
    stale_rounds = 0

    while (
        stale_rounds < options.cf_max_rounds
        and len(exact) < options.cf_max_points
    ):
        scored, estimates = _score_candidates(
            system, template, candidates, exact, interpolators
        )
        if estimates:
            # Estimate-only batch: the interpolated points land in the
            # trace now, before the next exact analysis -- the legacy
            # trace order.
            yield CandidateBatch(estimates=tuple(estimates))
        if not scored:
            break
        cost_min, n_best = scored[0]

        if n_best in exact:
            if cost_min <= 0:
                return exact[n_best]  # line 12: exact and schedulable
            # Line 18-19: best point already exact but unschedulable --
            # refine with the best *interpolated* candidate instead.
            n_next = next((n for _, n in scored if n not in exact), None)
            if n_next is None:
                break
            results = yield CandidateBatch(
                (template.with_dyn_length(n_next),)
            )
            record_point(n_next, results[0])
        else:
            # Lines 13-17: analyse the promising interpolated point.
            results = yield CandidateBatch(
                (template.with_dyn_length(n_best),)
            )
            result = results[0]
            record_point(n_best, result)
            if result.schedulable:
                return result
        new_best = _best_exact_cost(exact)
        if new_best < best_exact_cost:
            best_exact_cost = new_best
            stale_rounds = 0
        else:
            stale_rounds += 1

    feasible = [r for r in exact.values() if r.feasible]
    if not feasible:
        return None
    return min(feasible, key=lambda r: r.cost_value)


def exhaustive_dyn_length(
    evaluator: Evaluator,
    template: FlexRayConfig,
    lo: int,
    hi: int,
    max_points: Optional[int] = None,
) -> Optional[AnalysisResult]:
    """Drive :func:`exhaustive_proposals` on a caller-owned evaluator."""
    return drive_with_evaluator(
        exhaustive_proposals(evaluator.options, template, lo, hi, max_points),
        evaluator,
    )


def curvefit_dyn_length(
    evaluator: Evaluator,
    template: FlexRayConfig,
    lo: int,
    hi: int,
) -> Optional[AnalysisResult]:
    """Drive :func:`curvefit_proposals` on a caller-owned evaluator."""
    return drive_with_evaluator(
        curvefit_proposals(evaluator.system, evaluator.options, template, lo, hi),
        evaluator,
    )


def _best_exact_cost(exact: Dict[int, AnalysisResult]) -> float:
    return min((r.cost_value for r in exact.values()), default=math.inf)


def _score_candidates(
    system: System,
    template: FlexRayConfig,
    candidates: List[int],
    exact: Dict[int, AnalysisResult],
    interpolators: Dict[str, NewtonInterpolator],
) -> Tuple[List[Tuple[float, int]], List[Tuple[FlexRayConfig, float]]]:
    """Cost per candidate length: exact when analysed, else interpolated.

    Returns ``(scored, estimates)``: (cost, length) pairs sorted
    best-first, plus the interpolated points to record in the search
    trace (in candidate order).  Candidates are skipped while fewer than
    two exact feasible points exist (nothing to interpolate from).
    """
    app = system.application
    scored: List[Tuple[float, int]] = []
    estimates: List[Tuple[FlexRayConfig, float]] = []
    can_interpolate = interpolators and min(
        len(ip) for ip in interpolators.values()
    ) >= 2
    for n in candidates:
        if n in exact:
            scored.append((exact[n].cost_value, n))
            continue
        if not can_interpolate:
            continue
        # Clamp: a high-degree Newton polynomial can oscillate wildly
        # between nodes; negative or astronomic response times are noise.
        wcrt = {
            name: min(10**12, max(0, round(ip(n))))
            for name, ip in interpolators.items()
        }
        try:
            cost = cost_function(app, wcrt).value
        except Exception:  # missing activity: some exact run was infeasible
            continue
        estimates.append((template.with_dyn_length(n), cost))
        scored.append((cost, n))
    scored.sort(key=lambda pair: (pair[0], pair[1]))
    return scored, estimates
