"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library problems without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """An application model is malformed (bad reference, cycle, duplicate name...)."""


class ValidationError(ModelError):
    """A model or configuration failed semantic validation."""


class ConfigurationError(ReproError):
    """A FlexRay bus configuration violates the protocol specification."""


class AnalysisError(ReproError):
    """The timing analysis could not be carried out on the given input."""


class SchedulingError(AnalysisError):
    """The static scheduler could not place a task or message."""


class OptimisationError(ReproError):
    """A bus-access optimisation algorithm received invalid input."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistent state."""


class SerializationError(ReproError):
    """A system or result could not be encoded/decoded."""


class CampaignError(ReproError):
    """A campaign job matrix or checkpoint store is inconsistent."""


class ServiceError(ReproError):
    """A service request is malformed or cannot be admitted.

    Carries the HTTP status code the JSON/HTTP layer should answer
    with, so protocol-level validation can be raised from anywhere in
    the service stack and mapped to one error response shape
    (:func:`repro.io.serialization.error_to_dict`).
    """

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status
