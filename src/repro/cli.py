"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
generate   write a synthetic Section 7 system to JSON
analyse    run the holistic analysis of a system under a configuration
optimise   run a bus-access optimiser (bbc / obc-cf / obc-ee / sa / ga)
simulate   run the discrete-event simulator and print the trace
show       render a system or configuration as text/Gantt
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.holistic import analyse_system
from repro.casestudy.cruise_control import cruise_controller
from repro.core.bbc import optimise_bbc
from repro.core.ga import GAOptions, optimise_ga
from repro.core.obc import optimise_obc
from repro.core.sa import SAOptions, optimise_sa
from repro.errors import ReproError
from repro.flexray.simulator import SimulationOptions, simulate
from repro.io.serialization import (
    config_to_dict,
    load_config,
    load_system,
    save_config,
    save_system,
)
from repro.synth.taskgraph_gen import GeneratorConfig, generate_system
from repro.viz.gantt import render_bus_trace, render_cycle, render_schedule

OPTIMISERS = ("bbc", "obc-cf", "obc-ee", "sa", "ga")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree of the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlexRay bus access optimisation (DATE 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="generate a synthetic system")
    p_gen.add_argument("output", help="output JSON path")
    p_gen.add_argument("--nodes", type=int, default=3)
    p_gen.add_argument("--tasks-per-node", type=int, default=10)
    p_gen.add_argument("--seed", type=int, default=1)
    p_gen.add_argument(
        "--cruise-controller",
        action="store_true",
        help="write the built-in case study instead of a random system",
    )

    p_ana = sub.add_parser("analyse", help="holistic schedulability analysis")
    p_ana.add_argument("system", help="system JSON path")
    p_ana.add_argument("config", help="bus configuration JSON path")
    p_ana.add_argument("--json", action="store_true", help="machine output")

    p_opt = sub.add_parser("optimise", help="search for a bus configuration")
    p_opt.add_argument("system", help="system JSON path")
    p_opt.add_argument("--algorithm", choices=OPTIMISERS, default="obc-cf")
    p_opt.add_argument("--output", help="write the best configuration JSON here")
    p_opt.add_argument("--sa-iterations", type=int, default=400)
    p_opt.add_argument("--seed", type=int, default=2007)

    p_sim = sub.add_parser("simulate", help="discrete-event simulation")
    p_sim.add_argument("system", help="system JSON path")
    p_sim.add_argument("config", help="bus configuration JSON path")
    p_sim.add_argument("--trace", action="store_true", help="print every event")
    p_sim.add_argument("--gantt", action="store_true", help="ASCII bus Gantt")

    p_show = sub.add_parser("show", help="describe a system or configuration")
    p_show.add_argument("path", help="system or configuration JSON path")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args) -> int:
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "analyse":
        return _cmd_analyse(args)
    if args.command == "optimise":
        return _cmd_optimise(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "show":
        return _cmd_show(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def _cmd_generate(args) -> int:
    if args.cruise_controller:
        system = cruise_controller()
    else:
        system = generate_system(
            GeneratorConfig(
                n_nodes=args.nodes,
                tasks_per_node=args.tasks_per_node,
                seed=args.seed,
            )
        )
    save_system(system, args.output)
    print(f"wrote {system.describe()} to {args.output}")
    return 0


def _cmd_analyse(args) -> int:
    system = load_system(args.system)
    config = load_config(args.config)
    result = analyse_system(system, config)
    if args.json:
        payload = {
            "feasible": result.feasible,
            "schedulable": result.schedulable,
            "cost": result.cost_value,
            "wcrt": result.wcrt,
            "failure": result.failure,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if result.schedulable else 1
    print(system.describe())
    print(config.describe())
    if not result.feasible:
        print(f"INFEASIBLE: {result.failure}")
        return 1
    app = system.application
    for g in app.graphs:
        for name in g.topological_order():
            mark = " " if result.wcrt[name] <= app.deadline_of(name) else "!"
            print(
                f" {mark} {name:20s} R={result.wcrt[name]:>8} "
                f"D={app.deadline_of(name):>8}"
            )
    print(f"cost = {result.cost.value:.1f} "
          f"({'schedulable' if result.schedulable else 'NOT schedulable'})")
    from repro.analysis.sensitivity import bottlenecks

    print("tightest activities:")
    for entry in bottlenecks(system, result, count=3):
        print(
            f"    {entry.name:20s} slack={entry.slack:>8} "
            f"({entry.usage:.0%} of deadline)"
        )
    return 0 if result.schedulable else 1


def _cmd_optimise(args) -> int:
    system = load_system(args.system)
    if args.algorithm == "bbc":
        result = optimise_bbc(system)
    elif args.algorithm == "obc-cf":
        result = optimise_obc(system, method="curvefit")
    elif args.algorithm == "obc-ee":
        result = optimise_obc(system, method="exhaustive")
    elif args.algorithm == "sa":
        result = optimise_sa(
            system,
            sa_options=SAOptions(iterations=args.sa_iterations, seed=args.seed),
        )
    else:
        result = optimise_ga(system, ga_options=GAOptions(seed=args.seed))
    print(result.describe())
    if result.config is not None and args.output:
        save_config(result.config, args.output)
        print(f"wrote best configuration to {args.output}")
    if result.config is not None and not args.output:
        print(json.dumps(config_to_dict(result.config), indent=2, sort_keys=True))
    return 0 if result.schedulable else 1


def _cmd_simulate(args) -> int:
    system = load_system(args.system)
    config = load_config(args.config)
    result = simulate(system, config, SimulationOptions())
    if args.trace:
        for event in result.trace:
            print(event)
    if args.gantt:
        print(render_cycle(config))
        print(render_bus_trace(result.trace, config))
    print(
        f"finished={result.all_finished} misses={list(result.deadline_misses)}"
    )
    for name, r in sorted(result.observed_wcrt.items()):
        print(f"  {name:20s} observed R = {r}")
    return 0 if result.all_finished and not result.deadline_misses else 1


def _cmd_show(args) -> int:
    with open(args.path, encoding="utf-8") as fh:
        data = json.load(fh)
    if "application" in data:
        system = load_system(args.path)
        print(system.describe())
        for g in system.application.graphs:
            kind = "TT" if all(t.is_scs for t in g.tasks) else "ET"
            print(
                f"  graph {g.name} [{kind}] period={g.period} "
                f"deadline={g.deadline}: {len(g.tasks)} tasks, "
                f"{len(g.messages)} messages"
            )
    else:
        config = load_config(args.path)
        print(config.describe())
        print(render_cycle(config))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
