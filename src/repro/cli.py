"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
generate   write a synthetic Section 7 system to JSON
analyse    run the holistic analysis of a system under a configuration
optimise   run a registered search strategy (bbc / obc-cf / obc-ee / sa / ga)
campaign   run a (system x strategy) job matrix with resumable checkpoints
work       drain jobs from a distributed campaign fabric directory
simulate   run the discrete-event simulator and print the trace
show       render a system or configuration as text/Gantt
serve      run the JSON/HTTP analysis service (repro.service)

``optimise`` and ``campaign`` dispatch by strategy *name* through
:mod:`repro.core.strategies`, so a strategy registered by third-party
code is immediately available on the command line.  Both always release
the evaluator's process pool, even on error paths: every run goes
through the :class:`~repro.core.runtime.SearchDriver`, which holds the
evaluator as a context manager.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis.backend import BACKEND_MODES, describe_backends
from repro.analysis.holistic import AnalysisOptions, analyse_system
from repro.casestudy.cruise_control import cruise_controller
from repro.core.campaign import (
    CampaignOptions,
    campaign_matrix,
    ensure_writable_dir,
    ensure_writable_file,
    run_campaign,
)
from repro.core.fabric import (
    fabric_collect,
    fabric_status,
    fabric_submit,
    fabric_work,
)
from repro.core.ga import GAOptions
from repro.core.sa import SAOptions
from repro.core.search import BusOptimisationOptions
from repro.core.strategies import (
    available_strategies,
    get_strategy,
    optimise,
)
from repro.errors import ReproError
from repro.flexray.faults import IidFaults
from repro.flexray.simulator import SimulationOptions, simulate
from repro.io.serialization import (
    config_to_dict,
    load_config,
    load_system,
    result_to_dict,
    save_config,
    save_result,
    save_system,
)
from repro.synth.taskgraph_gen import GeneratorConfig, generate_system
from repro.viz.gantt import render_bus_trace, render_cycle, render_schedule


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree of the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlexRay bus access optimisation (DATE 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="generate a synthetic system")
    p_gen.add_argument("output", help="output JSON path")
    p_gen.add_argument("--nodes", type=int, default=3)
    p_gen.add_argument("--tasks-per-node", type=int, default=10)
    p_gen.add_argument("--seed", type=int, default=1)
    p_gen.add_argument(
        "--cruise-controller",
        action="store_true",
        help="write the built-in case study instead of a random system",
    )

    p_ana = sub.add_parser("analyse", help="holistic schedulability analysis")
    p_ana.add_argument("system", help="system JSON path")
    p_ana.add_argument("config", help="bus configuration JSON path")
    p_ana.add_argument("--json", action="store_true", help="machine output")
    _add_backend_argument(p_ana)

    p_opt = sub.add_parser("optimise", help="search for a bus configuration")
    p_opt.add_argument("system", help="system JSON path")
    p_opt.add_argument(
        "--algorithm", choices=available_strategies(), default="obc-cf"
    )
    p_opt.add_argument("--output", help="write the best configuration JSON here")
    p_opt.add_argument(
        "--result-output", help="write the full result JSON (trace included) here"
    )
    _add_runtime_arguments(p_opt)

    p_camp = sub.add_parser(
        "campaign", help="run a (system x strategy) job matrix"
    )
    p_camp.add_argument(
        "systems", nargs="+", help="system JSON paths (ids = file stems)"
    )
    p_camp.add_argument(
        "--strategies",
        default="bbc,obc-cf",
        help="comma-separated strategy names (default: bbc,obc-cf)",
    )
    p_camp.add_argument(
        "--checkpoint-dir",
        help="persist per-job results here and resume finished jobs",
    )
    p_camp.add_argument(
        "--output", help="write the campaign summary JSON here"
    )
    p_camp.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="per-job wall-clock timeout in seconds; a job that exceeds "
        "it is recorded as failed and the campaign continues",
    )
    p_camp.add_argument(
        "--job-retries",
        type=int,
        default=0,
        help="retries per failing job before it is recorded as failed "
        "(default 0; backoff between attempts is jittered)",
    )
    p_camp.add_argument(
        "--campaign-workers",
        type=int,
        default=1,
        help="jobs of the matrix run concurrently on N threads inside "
        "this process (default 1 = sequential; results are identical "
        "either way)",
    )
    p_camp.add_argument(
        "--fabric",
        metavar="DIR",
        help="submit the matrix to a distributed fabric directory "
        "instead of running it inline; this process then works the "
        "fabric alongside any 'repro work DIR' workers and collects "
        "the merged report when the matrix is drained",
    )
    p_camp.add_argument(
        "--fabric-wait",
        action="store_true",
        help="with --fabric: coordinate only -- submit, then poll until "
        "external workers drain the matrix (run none of the jobs here)",
    )
    _add_runtime_arguments(p_camp)

    p_work = sub.add_parser(
        "work",
        help="drain jobs from a distributed campaign fabric directory",
    )
    p_work.add_argument(
        "fabric", help="fabric directory (created by campaign --fabric)"
    )
    p_work.add_argument(
        "--worker-id",
        help="stable worker identity in leases and journals "
        "(default: host-pid)",
    )
    p_work.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="seconds a silent lease survives before other workers may "
        "presume this process dead and take its job over (default 30; "
        "heartbeats renew every ttl/4)",
    )
    p_work.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="seconds between scans while every open job is leased "
        "elsewhere (default 0.5)",
    )
    p_work.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="stop after running this many jobs (default: unbounded)",
    )
    p_work.add_argument(
        "--once",
        action="store_true",
        help="exit when no job is immediately claimable instead of "
        "polling for leases to expire",
    )

    p_sim = sub.add_parser("simulate", help="discrete-event simulation")
    p_sim.add_argument("system", help="system JSON path")
    p_sim.add_argument("config", help="bus configuration JSON path")
    p_sim.add_argument("--trace", action="store_true", help="print every event")
    p_sim.add_argument("--gantt", action="store_true", help="ASCII bus Gantt")
    p_sim.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="i.i.d. per-transmission corruption probability in [0, 1]; "
        "corrupted frames are retransmitted (default 0 = clean channel)",
    )
    p_sim.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault process (default 0); runs are "
        "deterministic per (rate, seed)",
    )

    p_show = sub.add_parser("show", help="describe a system or configuration")
    p_show.add_argument("path", help="system or configuration JSON path")

    p_serve = sub.add_parser(
        "serve", help="run the JSON/HTTP analysis service"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0 = pick a free one; the bound port is "
        "printed on startup)",
    )
    p_serve.add_argument(
        "--state-dir",
        default="service-state",
        help="campaign specs, checkpoints and reports live here; a "
        "restarted server pointed at the same directory resumes "
        "in-flight campaigns (default: service-state)",
    )
    p_serve.add_argument(
        "--max-concurrent",
        type=int,
        default=8,
        help="analyse requests processed at once; the rest get 429 "
        "(default 8)",
    )
    p_serve.add_argument(
        "--pool-entries",
        type=int,
        default=8,
        help="warm evaluators kept resident, LRU beyond this (default 8)",
    )
    p_serve.add_argument(
        "--max-campaigns",
        type=int,
        default=4,
        help="campaigns running at once before submissions get 429 "
        "(default 4)",
    )
    p_serve.add_argument(
        "--fabric",
        dest="serve_fabric",
        action="store_true",
        help="run campaigns through the distributed fabric: each "
        "campaign directory under the state dir becomes a fabric that "
        "external 'repro work' processes can join",
    )
    return parser


def _add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    """Search-runtime knobs shared by ``optimise`` and ``campaign``."""
    parser.add_argument("--sa-iterations", type=int, default=400,
                        help="SA annealing budget (sa strategy only)")
    parser.add_argument("--seed", type=int, default=2007,
                        help="SA/GA random seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel candidate-evaluation processes (default: serial; "
        "results are byte-identical either way)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="OBC outer-loop chunk: static variants raced per "
        "analyse_many batch (default 1 = exact Fig. 6 loop)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="wall-clock budget per run, enforced at batch boundaries",
    )
    parser.add_argument(
        "--max-evaluations",
        type=int,
        default=None,
        help="exact-analysis budget per run, enforced at batch boundaries",
    )
    _add_backend_argument(parser)


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    # Choices and help both derive from the one backend registry
    # (repro.analysis.backend.BACKEND_REGISTRY), so a new backend shows
    # up here -- with its availability on this interpreter -- without
    # touching the CLI.
    parser.add_argument(
        "--backend",
        choices=BACKEND_MODES,
        default="python",
        help="analysis evaluation backend; results are bit-identical "
        f"across all of them: {describe_backends()}",
    )
    parser.add_argument(
        "--fault-hypothesis",
        type=int,
        default=None,
        metavar="K",
        help="k-error fault hypothesis: charge up to K corrupted "
        "transmissions (each paid as retransmission delay) into the "
        "response-time bounds (default: clean channel)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args) -> int:
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "analyse":
        return _cmd_analyse(args)
    if args.command == "optimise":
        return _cmd_optimise(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "work":
        return _cmd_work(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "show":
        return _cmd_show(args)
    if args.command == "serve":
        return _cmd_serve(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def _cmd_generate(args) -> int:
    if args.cruise_controller:
        system = cruise_controller()
    else:
        system = generate_system(
            GeneratorConfig(
                n_nodes=args.nodes,
                tasks_per_node=args.tasks_per_node,
                seed=args.seed,
            )
        )
    save_system(system, args.output)
    print(f"wrote {system.describe()} to {args.output}")
    return 0


def _cmd_analyse(args) -> int:
    system = load_system(args.system)
    config = load_config(args.config)
    result = analyse_system(
        system,
        config,
        options=AnalysisOptions(
            backend=args.backend, fault_hypothesis=args.fault_hypothesis
        ),
    )
    if args.json:
        payload = {
            "feasible": result.feasible,
            "schedulable": result.schedulable,
            "cost": result.cost_value,
            "wcrt": result.wcrt,
            "failure": result.failure,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if result.schedulable else 1
    print(system.describe())
    print(config.describe())
    if not result.feasible:
        print(f"INFEASIBLE: {result.failure}")
        return 1
    app = system.application
    for g in app.graphs:
        for name in g.topological_order():
            mark = " " if result.wcrt[name] <= app.deadline_of(name) else "!"
            print(
                f" {mark} {name:20s} R={result.wcrt[name]:>8} "
                f"D={app.deadline_of(name):>8}"
            )
    print(f"cost = {result.cost.value:.1f} "
          f"({'schedulable' if result.schedulable else 'NOT schedulable'})")
    from repro.analysis.sensitivity import bottlenecks

    print("tightest activities:")
    for entry in bottlenecks(system, result, count=3):
        print(
            f"    {entry.name:20s} slack={entry.slack:>8} "
            f"({entry.usage:.0%} of deadline)"
        )
    return 0 if result.schedulable else 1


def _runtime_bus_options(args) -> Optional[BusOptimisationOptions]:
    """Evaluator options from the shared runtime flags (None = defaults)."""
    if (
        args.workers is None
        and args.chunk_size is None
        and args.backend == "python"
        and args.fault_hypothesis is None
    ):
        return None
    return BusOptimisationOptions(
        parallel_workers=args.workers,
        obc_chunk_size=args.chunk_size if args.chunk_size is not None else 1,
        analysis=AnalysisOptions(
            backend=args.backend, fault_hypothesis=args.fault_hypothesis
        ),
    )


def _strategy_options(args, name: str):
    """Build the named strategy's option record from the CLI flags.

    SA/GA get their dedicated flags; every other strategy (including
    third-party registrations) gets its registered ``options_type``
    with the shared runtime knobs.
    """
    base = dict(
        bus=_runtime_bus_options(args),
        max_seconds=args.max_seconds,
        max_evaluations=args.max_evaluations,
    )
    if name == "sa":
        return SAOptions(
            iterations=args.sa_iterations, seed=args.seed, **base
        )
    if name == "ga":
        return GAOptions(seed=args.seed, **base)
    return get_strategy(name).options_type(**base)


def _cmd_optimise(args) -> int:
    system = load_system(args.system)
    result = optimise(
        system, args.algorithm, _strategy_options(args, args.algorithm)
    )
    print(result.describe())
    if args.result_output:
        save_result(result, args.result_output)
        print(f"wrote full result to {args.result_output}")
    if result.config is not None and args.output:
        save_config(result.config, args.output)
        print(f"wrote best configuration to {args.output}")
    if result.config is not None and not args.output:
        print(json.dumps(config_to_dict(result.config), indent=2, sort_keys=True))
    return 0 if result.schedulable else 1


def _cmd_campaign(args) -> int:
    systems = {}
    for path in args.systems:
        system_id = os.path.splitext(os.path.basename(path))[0]
        if system_id in systems:
            print(f"error: duplicate system id {system_id!r}", file=sys.stderr)
            return 2
        systems[system_id] = load_system(path)
    strategies = [
        (name, _strategy_options(args, name))
        for name in args.strategies.split(",")
        if name
    ]
    jobs = campaign_matrix(systems, strategies)
    options = CampaignOptions(
        job_timeout=args.job_timeout,
        max_retries=args.job_retries,
        campaign_workers=args.campaign_workers,
    )

    # Fail fast on unwritable targets before any job burns CPU time.
    if args.checkpoint_dir:
        ensure_writable_dir(args.checkpoint_dir, flag="--checkpoint-dir")
    if args.output:
        ensure_writable_file(args.output, flag="--output")

    if args.fabric:
        report = _coordinate_fabric(args, systems, strategies, options)
    else:
        def progress(job, result, resumed) -> None:
            state = "resumed" if resumed else "ran"
            print(f"[{state}] {job.job_id}: {result.describe()}")

        report = run_campaign(
            systems,
            jobs,
            checkpoint_dir=args.checkpoint_dir,
            progress=progress,
            options=options,
        )
    schedulable = sum(r.schedulable for r in report.results.values())
    print(
        f"campaign: {len(jobs)} jobs ({len(report.resumed)} resumed, "
        f"{len(report.failures)} failed), "
        f"{schedulable} schedulable, {report.elapsed_seconds:.2f}s"
    )
    for failure in report.failures.values():
        print(f"[failed] {failure.describe()}", file=sys.stderr)
    if args.output:
        payload = {
            "jobs": {
                job_id: result_to_dict(result)
                for job_id, result in report.results.items()
            },
            "failures": {
                job_id: {
                    "kind": failure.kind,
                    "message": failure.message,
                    "attempts": failure.attempts,
                }
                for job_id, failure in report.failures.items()
            },
            "resumed": list(report.resumed),
            "quarantined": list(report.quarantined),
            "elapsed_seconds": report.elapsed_seconds,
        }
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote campaign summary to {args.output}")
    if report.failures:
        return 1
    return 0 if schedulable == len(jobs) else 1


def _coordinate_fabric(args, systems, strategies, options):
    """The ``campaign --fabric`` path: submit, drain, collect.

    Submission is idempotent (content-addressed manifest), so rerunning
    the same command resumes the fabric.  Without ``--fabric-wait``
    this process doubles as a worker; with it, it only polls while
    external ``repro work`` processes drain the matrix.
    """
    import time as _time

    spec = fabric_submit(
        args.fabric,
        systems,
        strategies,
        bus=_runtime_bus_options(args),
        options=options,
    )
    print(
        f"fabric {spec.fabric_id}: {len(spec.jobs)} jobs under "
        f"{args.fabric} (add workers with: repro work {args.fabric})"
    )
    if args.fabric_wait:
        while True:
            status = fabric_status(args.fabric)
            print(status.describe())
            if status.complete:
                break
            _time.sleep(max(args.job_timeout or 0, 2.0))
    else:
        fabric_work(args.fabric, log=print)
    return fabric_collect(args.fabric)


def _cmd_work(args) -> int:
    report = fabric_work(
        args.fabric,
        worker_id=args.worker_id,
        lease_ttl=args.lease_ttl,
        poll=args.poll,
        max_jobs=args.max_jobs,
        once=args.once,
        log=print,
    )
    print(
        f"worker {report.worker_id}: {len(report.completed)} completed, "
        f"{len(report.failed)} failed, {len(report.reaped)} leases reaped, "
        f"{len(report.lost)} lost"
    )
    print(fabric_status(args.fabric).describe())
    return 1 if report.failed else 0


def _cmd_simulate(args) -> int:
    system = load_system(args.system)
    config = load_config(args.config)
    faults = None
    if args.fault_rate:
        faults = IidFaults(rate=args.fault_rate, seed=args.fault_seed)
    result = simulate(system, config, SimulationOptions(faults=faults))
    if args.trace:
        for event in result.trace:
            print(event)
    if args.gantt:
        print(render_cycle(config))
        print(render_bus_trace(result.trace, config))
    print(
        f"finished={result.all_finished} misses={list(result.deadline_misses)}"
    )
    if faults is not None:
        print(f"retransmissions={result.total_retransmissions}")
    for name, r in sorted(result.observed_wcrt.items()):
        print(f"  {name:20s} observed R = {r}")
    return 0 if result.all_finished and not result.deadline_misses else 1


def _cmd_serve(args) -> int:
    # Imported here so the CLI's non-service commands never pay for the
    # HTTP stack (and a service bug cannot break `analyse`/`optimise`).
    from repro.service.server import ServiceConfig, serve

    return serve(
        ServiceConfig(
            host=args.host,
            port=args.port,
            state_dir=args.state_dir,
            max_concurrent=args.max_concurrent,
            pool_entries=args.pool_entries,
            max_campaigns=args.max_campaigns,
            fabric=args.serve_fabric,
        )
    )


def _cmd_show(args) -> int:
    with open(args.path, encoding="utf-8") as fh:
        data = json.load(fh)
    if "application" in data:
        system = load_system(args.path)
        print(system.describe())
        for g in system.application.graphs:
            kind = "TT" if all(t.is_scs for t in g.tasks) else "ET"
            print(
                f"  graph {g.name} [{kind}] period={g.period} "
                f"deadline={g.deadline}: {len(g.tasks)} tasks, "
                f"{len(g.messages)} messages"
            )
    else:
        config = load_config(args.path)
        print(config.describe())
        print(render_cycle(config))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
