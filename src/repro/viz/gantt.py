"""ASCII Gantt rendering of schedules, bus cycles and simulation traces.

Text-only (terminal/CI friendly) visualisation of the artefacts the
paper draws in Figs. 1, 3 and 4: per-node static schedules, the bus
cycle structure, and message transmissions observed by the simulator.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.schedule_table import ScheduleTable
from repro.core.config import FlexRayConfig
from repro.errors import ValidationError
from repro.flexray.events import EventKind, TraceEvent


def _scale(t: int, t0: int, t1: int, width: int) -> int:
    return round((t - t0) / max(1, (t1 - t0)) * width)


def _lane(
    label: str,
    spans: Iterable[Tuple[int, int, str]],
    t0: int,
    t1: int,
    width: int,
) -> str:
    """One Gantt row: '<label> |##aa..bb##|' between t0 and t1."""
    cells = [" "] * width
    for start, end, tag in spans:
        lo = max(_scale(start, t0, t1, width), 0)
        hi = min(_scale(end, t0, t1, width), width)
        if hi <= lo and lo < width:
            hi = lo + 1
        mark = (tag or "#")[0]
        for i in range(lo, hi):
            cells[i] = mark
    return f"{label:>12} |{''.join(cells)}|"


def render_schedule(
    table: ScheduleTable,
    nodes: Iterable[str],
    until: Optional[int] = None,
    width: int = 72,
) -> str:
    """Gantt chart of the static schedule table, one lane per node.

    Each SCS task instance is drawn with the first letter of its name;
    a legend mapping letters back to task names follows the lanes.
    """
    if width < 8:
        raise ValidationError("gantt width must be >= 8 characters")
    until = until or table.horizon
    lines = [f"static schedule, t in [0, {until}) MT"]
    legend: Dict[str, List[str]] = {}
    for node in nodes:
        spans = []
        for entry in table.task_entries_on(node):
            if entry.start >= until:
                continue
            tag = entry.task.name[0]
            legend.setdefault(tag, [])
            if entry.task.name not in legend[tag]:
                legend[tag].append(entry.task.name)
            spans.append((entry.start, min(entry.finish, until), tag))
        lines.append(_lane(node, spans, 0, until, width))
    for tag in sorted(legend):
        lines.append(f"{'':>12}  {tag} = {', '.join(sorted(legend[tag]))}")
    return "\n".join(lines)


def render_cycle(config: FlexRayConfig, width: int = 72) -> str:
    """One bus cycle: static slots with owners, then the DYN segment."""
    if width < 8:
        raise ValidationError("gantt width must be >= 8 characters")
    total = config.gd_cycle
    lines = [
        f"bus cycle: {config.n_static_slots} ST slots x "
        f"{config.gd_static_slot} MT + {config.n_minislots} minislots x "
        f"{config.gd_minislot} MT = {total} MT"
    ]
    spans = []
    for i, owner in enumerate(config.static_slots):
        start = i * config.gd_static_slot
        spans.append((start, start + config.gd_static_slot, owner[-1]))
    spans.append((config.st_bus, total, "."))
    lines.append(_lane("cycle", spans, 0, total, width))
    for i, owner in enumerate(config.static_slots, start=1):
        lines.append(f"{'':>12}  ST slot {i}: {owner}")
    if config.n_minislots:
        lines.append(f"{'':>12}  . = dynamic segment ({config.dyn_bus} MT)")
    return "\n".join(lines)


def render_bus_trace(
    trace: Iterable[TraceEvent],
    config: FlexRayConfig,
    until: Optional[int] = None,
    width: int = 72,
) -> str:
    """Bus occupancy lane reconstructed from a simulation trace.

    Static frames and dynamic transmissions appear with the first letter
    of the message name; the second lane marks cycle boundaries.
    """
    if width < 8:
        raise ValidationError("gantt width must be >= 8 characters")
    events = [
        e
        for e in trace
        if e.kind in (EventKind.ST_FRAME, EventKind.DYN_TX_START,
                      EventKind.MSG_ARRIVAL)
    ]
    if not events:
        return "bus trace: (no transmissions)"
    horizon = until or (max(e.time for e in events) + config.gd_cycle)
    spans = []
    starts: Dict[Tuple[str, int], int] = {}
    for e in events:
        if e.kind in (EventKind.ST_FRAME, EventKind.DYN_TX_START):
            starts[(e.activity, e.instance)] = e.time
        elif (e.activity, e.instance) in starts:
            begin = starts.pop((e.activity, e.instance))
            if begin < horizon:
                spans.append((begin, min(e.time, horizon), e.activity[0]))
    lines = [f"bus trace, t in [0, {horizon}) MT"]
    lines.append(_lane("bus", spans, 0, horizon, width))
    ticks = []
    cycle = 0
    while cycle * config.gd_cycle < horizon:
        t = cycle * config.gd_cycle
        ticks.append((t, t + 1, "|"))
        cycle += 1
    lines.append(_lane("cycles", ticks, 0, horizon, width))
    return "\n".join(lines)
