"""Text visualisation of schedules, bus cycles and simulation traces."""

from repro.viz.gantt import render_bus_trace, render_cycle, render_schedule

__all__ = ["render_bus_trace", "render_cycle", "render_schedule"]
