"""Analysis-as-a-service: the JSON/HTTP runtime over the search stack.

The service layer turns the library into a long-lived system serving
many concurrent users: :mod:`repro.service.server` is the HTTP front
(``python -m repro serve``), :mod:`repro.service.protocol` the wire
schema, :mod:`repro.service.pool` the warm evaluator pool keyed by
system fingerprint, and :mod:`repro.service.state` the persistent,
checkpoint-backed campaign store.  See ``docs/ARCHITECTURE.md`` ("The
service layer") for the design.
"""

from repro.service.pool import EvaluatorPool
from repro.service.server import (
    AnalysisService,
    ServiceConfig,
    create_server,
    serve,
)
from repro.service.state import CampaignStore

__all__ = [
    "AnalysisService",
    "CampaignStore",
    "EvaluatorPool",
    "ServiceConfig",
    "create_server",
    "serve",
]
