"""Request parsing and response shaping of the analysis service.

The wire format is plain JSON over HTTP, built entirely from the
schema-versioned codecs in :mod:`repro.io.serialization`: systems and
configurations travel as their existing document schemas, analysis and
optimisation results as theirs, and every body is wrapped in the
service envelope (:func:`repro.io.serialization.envelope`).  This
module turns validated envelopes into typed request records -- raising
:class:`~repro.errors.ServiceError` with the right HTTP status on any
malformed input -- and shapes the response payloads the endpoints
return.

Request bodies
--------------
``POST /analyse``::

    {"system": <system doc>, "config": <config doc>,
     "options": {"backend": "python", "fault_hypothesis": null}}

``POST /campaigns``::

    {"systems": {"s0": <system doc>, ...},
     "strategies": ["bbc", {"name": "sa", "iterations": 50, "seed": 7}],
     "budget": {"max_seconds": 5.0, "max_evaluations": 2000}}

Strategy entries are either a bare registry name or an object whose
``name`` picks the registry entry and whose remaining keys are fields
of that strategy's option record (``SAOptions.iterations``,
``StrategyOptions.max_evaluations``...).  The request-level ``budget``
maps onto :class:`~repro.core.strategies.StrategyOptions.max_seconds` /
``max_evaluations`` of every strategy that did not set its own -- the
per-request budget control of the service layer.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.holistic import AnalysisOptions
from repro.core.search import BusOptimisationOptions
from repro.core.strategies import StrategyOptions, get_strategy
from repro.errors import (
    OptimisationError,
    ReproError,
    SerializationError,
    ServiceError,
)
from repro.io.serialization import (
    analysis_options_from_dict,
    analysis_options_to_dict,
    analysis_result_to_dict,
    config_from_dict,
    envelope,
    parse_envelope,
    system_fingerprint,
    system_from_dict,
)
from repro.model.system import System

__all__ = [
    "AnalyseRequest",
    "CampaignRequest",
    "analyse_response",
    "parse_analyse_request",
    "parse_campaign_request",
]

#: Budget keys accepted at the request level and per strategy entry.
BUDGET_FIELDS = ("max_seconds", "max_evaluations")


@dataclass(frozen=True)
class AnalyseRequest:
    """One validated ``POST /analyse`` body."""

    system: System
    config: Any  # FlexRayConfig
    options: AnalysisOptions
    fingerprint: str

    def options_key(self) -> str:
        """The pool-key half describing the analysis options."""
        doc = json.dumps(analysis_options_to_dict(self.options), sort_keys=True)
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class CampaignRequest:
    """One validated ``POST /campaigns`` body."""

    systems: Dict[str, System]
    strategies: List[Tuple[str, StrategyOptions]]
    spec: Dict[str, Any]  # the canonical raw request document

    @property
    def campaign_id(self) -> str:
        """Deterministic id: the digest of the canonical spec.

        Content-addressed on purpose: re-submitting the same campaign
        (to the same or a restarted server) lands on the same id and
        therefore the same checkpoint directory, so the checkpoint
        protocol deduplicates the work instead of repeating it.
        """
        doc = json.dumps(self.spec, sort_keys=True)
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]


def _bad_request(message: str) -> ServiceError:
    return ServiceError(message, status=400)


def _require(data: Dict[str, Any], key: str) -> Any:
    if key not in data:
        raise _bad_request(f"request is missing the {key!r} field")
    return data[key]


def parse_analyse_request(data: Any) -> AnalyseRequest:
    """Validate and decode a ``POST /analyse`` body."""
    try:
        data = parse_envelope(data, "analyse_request")
        system = system_from_dict(_require(data, "system"))
        config = config_from_dict(_require(data, "config"))
        options = analysis_options_from_dict(data.get("options"))
    except SerializationError as exc:
        raise _bad_request(str(exc)) from exc
    return AnalyseRequest(
        system=system,
        config=config,
        options=options,
        fingerprint=system_fingerprint(system),
    )


def _strategy_options(
    name: str, fields: Dict[str, Any], budget: Dict[str, Any]
) -> StrategyOptions:
    """Build a registry strategy's option record from JSON fields.

    Accepts exactly the strategy's dataclass fields (minus ``bus``,
    which is server-side state, not wire format); the request-level
    *budget* fills ``max_seconds``/``max_evaluations`` the entry left
    unset.
    """
    try:
        spec = get_strategy(name)
    except OptimisationError as exc:
        raise _bad_request(str(exc)) from exc
    legal = {
        f.name for f in dataclasses.fields(spec.options_type) if f.name != "bus"
    }
    unknown = set(fields) - legal
    if unknown:
        raise _bad_request(
            f"strategy {name!r} has no option(s) {sorted(unknown)}; "
            f"it accepts {sorted(legal)}"
        )
    merged = dict(fields)
    for key in BUDGET_FIELDS:
        if key not in merged and budget.get(key) is not None:
            merged[key] = budget[key]
    try:
        return spec.options_type(**merged)
    except (TypeError, ValueError) as exc:
        raise _bad_request(f"bad options for strategy {name!r}: {exc}") from exc


def parse_campaign_request(data: Any) -> CampaignRequest:
    """Validate and decode a ``POST /campaigns`` body."""
    try:
        data = parse_envelope(data, "campaign_request")
    except SerializationError as exc:
        raise _bad_request(str(exc)) from exc
    systems_doc = _require(data, "systems")
    if not isinstance(systems_doc, dict) or not systems_doc:
        raise _bad_request("'systems' must be a non-empty {id: system} object")
    systems: Dict[str, System] = {}
    for system_id, doc in systems_doc.items():
        try:
            systems[system_id] = system_from_dict(doc)
        except SerializationError as exc:
            raise _bad_request(f"system {system_id!r}: {exc}") from exc
    budget = data.get("budget") or {}
    if not isinstance(budget, dict) or set(budget) - set(BUDGET_FIELDS):
        raise _bad_request(
            f"'budget' must be an object with keys from {list(BUDGET_FIELDS)}"
        )
    entries = _require(data, "strategies")
    if not isinstance(entries, list) or not entries:
        raise _bad_request("'strategies' must be a non-empty list")
    strategies: List[Tuple[str, StrategyOptions]] = []
    for entry in entries:
        if isinstance(entry, str):
            name, fields = entry, {}
        elif isinstance(entry, dict) and isinstance(entry.get("name"), str):
            fields = {k: v for k, v in entry.items() if k != "name"}
            name = entry["name"]
        else:
            raise _bad_request(
                f"each strategy entry must be a name or an object with a "
                f"'name' field, got {entry!r}"
            )
        strategies.append((name, _strategy_options(name, fields, budget)))
    # Canonicalise the spec (defaults resolved, envelope fields dropped)
    # so semantically identical requests share a campaign id.
    spec = {
        "systems": {sid: systems_doc[sid] for sid in sorted(systems_doc)},
        "strategies": [
            entry if isinstance(entry, dict) else {"name": entry}
            for entry in entries
        ],
        "budget": {k: budget.get(k) for k in BUDGET_FIELDS},
    }
    return CampaignRequest(systems=systems, strategies=strategies, spec=spec)


def analyse_response(
    request: AnalyseRequest, result: Any, service: Dict[str, Any]
) -> Dict[str, Any]:
    """Shape the ``POST /analyse`` response body.

    ``result`` is the :class:`~repro.analysis.holistic.AnalysisResult`;
    ``service`` carries the per-request pool accounting (pool hit flag,
    exact evaluations, cross-request cache hits) the server measured.
    """
    return envelope(
        "analysis",
        {
            "fingerprint": request.fingerprint,
            "result": analysis_result_to_dict(result),
            "service": service,
        },
    )


def runtime_bus_options(options: AnalysisOptions) -> BusOptimisationOptions:
    """The evaluator options one analyse request implies."""
    return BusOptimisationOptions(analysis=options)


def guard_repro_error(exc: ReproError) -> ServiceError:
    """Map a library error to the service error shape (HTTP 422).

    Well-formed JSON that the analysis stack rejects (a config
    violating the protocol spec, an inconsistent model) is a semantic
    problem with the request, not a server fault.
    """
    if isinstance(exc, ServiceError):
        return exc
    return ServiceError(f"{type(exc).__name__}: {exc}", status=422)
