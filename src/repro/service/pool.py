"""The warm evaluator pool: per-system analysis state kept resident.

The expensive part of answering an ``/analyse`` request is not the
analysis itself but everything an :class:`~repro.core.search.Evaluator`
accumulates around it: the per-system invariants and schedule caches of
its :class:`~repro.analysis.context.AnalysisContext`, the backend's
packed arrays, and the LRU result cache.  The pool keeps one warm
evaluator per ``(system fingerprint, options fingerprint)`` key, so
repeated requests against the same system -- the heavy-traffic shape
the service is built for -- ride warm caches instead of rebuilding
them, and the evaluator's own result cache becomes a *shared
cross-request result cache* for free.

Concurrency model: an evaluator is **not** thread-safe, so each pool
entry carries a lock and :meth:`EvaluatorPool.lease` hands the caller
exclusive use for the duration of one request.  N threads hammering one
fingerprint therefore share a *single* warm evaluator, serialized at
the entry lock (the analysis is CPU-bound pure Python, so serializing
per system loses nothing to the GIL), while requests for different
fingerprints proceed concurrently on their own entries.

Eviction is LRU over distinct keys, bounded by ``max_entries``; evicted
evaluators are released through their context-manager :meth:`close` as
soon as the last lease on them drains.  All accounting -- hits, misses,
evictions, per-entry lease counts -- is surfaced by :meth:`stats` and
lands in service responses and ``/health``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from repro.core.search import BusOptimisationOptions, Evaluator
from repro.model.system import System

__all__ = ["EvaluatorPool", "PoolLease"]


class _Entry:
    """One pooled evaluator plus its lock and lease accounting."""

    def __init__(self, evaluator: Evaluator):
        self.evaluator = evaluator
        self.lock = threading.Lock()
        self.leases = 0  # total leases ever granted on this entry
        self.active = 0  # leases currently held
        self.evicted = False  # close when the last active lease drains


class PoolLease:
    """What :meth:`EvaluatorPool.lease` yields: exclusive evaluator use.

    ``hit`` says whether the evaluator was already warm when this
    request arrived -- the pool-hit accounting the black-box tests
    assert on.
    """

    def __init__(self, key: Tuple[str, str], evaluator: Evaluator, hit: bool):
        self.key = key
        self.evaluator = evaluator
        self.hit = hit


class EvaluatorPool:
    """LRU pool of warm evaluators keyed by system fingerprint."""

    def __init__(self, max_entries: int = 8):
        if max_entries < 1:
            raise ValueError(f"max_entries={max_entries} must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "Dict[Tuple[str, str], _Entry]" = {}
        self._order: list = []  # LRU order, least recent first
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @contextmanager
    def lease(
        self,
        fingerprint: str,
        options_key: str,
        system: System,
        options: Optional[BusOptimisationOptions] = None,
    ) -> Iterator[PoolLease]:
        """Exclusive use of the warm evaluator for one request.

        ``fingerprint`` identifies the system content
        (:func:`repro.io.serialization.system_fingerprint`) and
        ``options_key`` the analysis options; together they are the
        pool key.  The evaluator is created cold on the first lease of
        a key and kept warm for later ones; the entry lock is held for
        the whole ``with`` body.
        """
        key = (fingerprint, options_key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                hit = True
                self._order.remove(key)
                self._order.append(key)
            else:
                self.misses += 1
                hit = False
                entry = _Entry(
                    Evaluator(system, options or BusOptimisationOptions())
                )
                self._entries[key] = entry
                self._order.append(key)
                self._evict_over_bound()
            entry.leases += 1
            entry.active += 1
        with entry.lock:
            try:
                yield PoolLease(key, entry.evaluator, hit)
            finally:
                with self._lock:
                    entry.active -= 1
                    if entry.evicted and entry.active == 0:
                        entry.evaluator.close()

    def _evict_over_bound(self) -> None:
        """Drop least-recently-used entries past the bound (lock held)."""
        while len(self._entries) > self.max_entries:
            key = self._order.pop(0)
            entry = self._entries.pop(key)
            self.evictions += 1
            entry.evicted = True
            if entry.active == 0:
                entry.evaluator.close()

    def stats(self) -> dict:
        """Accounting snapshot for responses and ``/health``."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "per_entry": {
                    "/".join(key): {
                        "leases": entry.leases,
                        "evaluations": entry.evaluator.evaluations,
                        "cache_hits": entry.evaluator.cache_hits,
                    }
                    for key, entry in self._entries.items()
                },
            }

    def close(self) -> None:
        """Release every pooled evaluator (idle entries immediately,
        leased ones when their lease drains)."""
        with self._lock:
            for entry in self._entries.values():
                entry.evicted = True
                if entry.active == 0:
                    entry.evaluator.close()
            self._entries.clear()
            self._order.clear()
