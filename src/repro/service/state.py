"""Campaign state of the analysis service: persistent and resumable.

Every submitted campaign lives in its own directory under the server's
state directory::

    <state_dir>/campaigns/<campaign_id>/
        spec.json          # the canonical request document
        checkpoints/       # per-job results (the campaign checkpoint protocol)
        result.json        # the terminal campaign report (written once, atomically)

The layout *is* the durability story: ``spec.json`` is written before
the first job runs, every finished job lands in ``checkpoints/``
through :mod:`repro.core.campaign`'s fingerprint-validated protocol,
and ``result.json`` appears only when the whole matrix is done.  A
server killed mid-campaign therefore restarts into one of three states
per campaign, all handled by :meth:`CampaignStore.recover`:

* ``result.json`` present -- the campaign finished; load the report.
* ``spec.json`` only -- the campaign was in flight; re-launch it.  The
  checkpoint store answers every already-finished job instantly and
  the interrupted job re-runs deterministically, so the final report
  is identical (modulo wall-clock fields) to an uninterrupted run.
* neither readable -- the directory is ignored (a campaign whose spec
  never finished writing was never acknowledged to any client).

Campaign ids are content-addressed
(:attr:`~repro.service.protocol.CampaignRequest.campaign_id`), so
re-submitting a spec -- to the same server or a restarted one -- joins
the existing campaign instead of duplicating work.

With ``fabric=True`` the store delegates execution to the distributed
fabric (:mod:`repro.core.fabric`): each campaign directory additionally
holds a fabric ``manifest.json`` (plus ``leases/``, ``journal/``...),
the server process works the matrix as one ordinary fabric worker, and
any number of external ``repro work <campaign dir>`` processes can
join in; the published results land in the same ``checkpoints/``
directory either way.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.core.campaign import campaign_matrix, run_campaign
from repro.core.fabric import fabric_collect, fabric_submit, fabric_work
from repro.core.search import BusOptimisationOptions
from repro.errors import ServiceError
from repro.io.serialization import result_to_dict
from repro.service.protocol import CampaignRequest, parse_campaign_request

__all__ = ["CampaignState", "CampaignStore"]


class CampaignState:
    """In-memory view of one campaign (guarded by the store's lock)."""

    def __init__(self, campaign_id: str, total_jobs: int):
        self.campaign_id = campaign_id
        self.status = "running"  # running | done | failed
        self.total_jobs = total_jobs
        self.jobs: Dict[str, Dict[str, Any]] = {}
        self.report: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.submitted_at = time.time()

    def snapshot(self) -> Dict[str, Any]:
        """The ``GET /campaigns/<id>`` payload for this campaign."""
        doc: Dict[str, Any] = {
            "campaign": self.campaign_id,
            "status": self.status,
            "jobs_total": self.total_jobs,
            "jobs_done": len(self.jobs),
            "jobs": dict(self.jobs),
        }
        if self.report is not None:
            doc["report"] = self.report
        if self.error is not None:
            doc["error"] = self.error
        return doc


class CampaignStore:
    """Submit, track, persist and recover campaigns."""

    def __init__(
        self,
        state_dir: str,
        bus: Optional[BusOptimisationOptions] = None,
        on_done: Optional[Callable[[str], None]] = None,
        fabric: bool = False,
    ):
        self.root = os.path.join(state_dir, "campaigns")
        os.makedirs(self.root, exist_ok=True)
        self.bus = bus
        self.on_done = on_done
        #: With ``fabric`` each campaign directory doubles as a
        #: distributed fabric (:mod:`repro.core.fabric`): the server
        #: submits the matrix there and works it like any other worker,
        #: so external ``repro work <campaign dir>`` processes can join
        #: a running campaign and share its jobs.
        self.fabric = fabric
        self._lock = threading.Lock()
        self._states: Dict[str, CampaignState] = {}

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _dir(self, campaign_id: str) -> str:
        return os.path.join(self.root, campaign_id)

    def _spec_path(self, campaign_id: str) -> str:
        return os.path.join(self._dir(campaign_id), "spec.json")

    def _result_path(self, campaign_id: str) -> str:
        return os.path.join(self._dir(campaign_id), "result.json")

    def _checkpoint_dir(self, campaign_id: str) -> str:
        return os.path.join(self._dir(campaign_id), "checkpoints")

    # ------------------------------------------------------------------
    # submission and recovery
    # ------------------------------------------------------------------
    def submit(self, request: CampaignRequest) -> Dict[str, Any]:
        """Start (or join) the campaign for *request*.

        Returns ``{"campaign": id, "status": ..., "created": bool}``;
        ``created`` is False when the id was already known -- the
        content-addressed dedup path.
        """
        campaign_id = request.campaign_id
        with self._lock:
            state = self._states.get(campaign_id)
            if state is not None:
                return {
                    "campaign": campaign_id,
                    "status": state.status,
                    "created": False,
                }
            jobs = campaign_matrix(request.systems, request.strategies, bus=self.bus)
            state = CampaignState(campaign_id, total_jobs=len(jobs))
            self._states[campaign_id] = state
        os.makedirs(self._checkpoint_dir(campaign_id), exist_ok=True)
        spec_path = self._spec_path(campaign_id)
        tmp = spec_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(request.spec, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, spec_path)
        self._launch(request, state)
        return {"campaign": campaign_id, "status": "running", "created": True}

    def submit_guarded(
        self, request: CampaignRequest, max_running: int
    ) -> Dict[str, Any]:
        """:meth:`submit` behind the campaign admission cap.

        Joining an already-known campaign is always admitted (it costs
        nothing); only *new* campaigns count against ``max_running``.
        The cap is a soft bound: it protects the CPU from unbounded
        concurrent matrices, not a hard invariant.
        """
        with self._lock:
            known = request.campaign_id in self._states
        if not known and self.running_count() >= max_running:
            raise ServiceError(
                f"over capacity: {max_running} campaign(s) already "
                f"running; retry when one finishes",
                status=429,
            )
        return self.submit(request)

    def recover(self) -> Dict[str, list]:
        """Load finished campaigns and re-launch interrupted ones.

        Called once at server start; returns ``{"finished": [...],
        "resumed": [...]}`` campaign-id lists for the startup log.
        """
        finished, resumed = [], []
        for campaign_id in sorted(os.listdir(self.root)) if os.path.isdir(self.root) else []:
            if campaign_id in self._states:
                continue
            report = self._read_json(self._result_path(campaign_id))
            spec = self._read_json(self._spec_path(campaign_id))
            if report is not None and "report" in report:
                state = CampaignState(
                    campaign_id, total_jobs=report.get("jobs_total", 0)
                )
                state.status = report.get("status", "done")
                state.jobs = report.get("jobs", {})
                state.report = report["report"]
                with self._lock:
                    self._states[campaign_id] = state
                finished.append(campaign_id)
            elif spec is not None:
                try:
                    request = parse_campaign_request(spec)
                except ServiceError:
                    continue  # unreadable spec: never acknowledged, skip
                jobs = campaign_matrix(
                    request.systems, request.strategies, bus=self.bus
                )
                state = CampaignState(campaign_id, total_jobs=len(jobs))
                with self._lock:
                    self._states[campaign_id] = state
                self._launch(request, state)
                resumed.append(campaign_id)
        return {"finished": finished, "resumed": resumed}

    @staticmethod
    def _read_json(path: str) -> Optional[dict]:
        try:
            with open(path, encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _launch(self, request: CampaignRequest, state: CampaignState) -> None:
        """Run the campaign on a daemon worker thread.

        Daemon on purpose: a hard server kill must be able to stop the
        process mid-job -- the checkpoint protocol (not a graceful
        thread join) is what makes that safe.
        """
        thread = threading.Thread(
            target=self._run,
            args=(request, state),
            daemon=True,
            name=f"campaign-{state.campaign_id}",
        )
        thread.start()

    def _run(self, request: CampaignRequest, state: CampaignState) -> None:
        def progress(job, result, was_resumed) -> None:
            # Job-boundary snapshot from the finished driver run's
            # trace; visible to GET /campaigns/<id> immediately.
            with self._lock:
                state.jobs[job.job_id] = {
                    "resumed": was_resumed,
                    "schedulable": result.schedulable,
                    "cost": result.cost,
                    "evaluations": result.evaluations,
                    "trace_points": len(result.trace),
                    "stop_reason": result.stop_reason,
                }

        try:
            if self.fabric:
                # The campaign directory *is* the fabric: manifest next
                # to spec.json, published results in the same
                # checkpoints/ the non-fabric path uses.  This process
                # is just one worker -- external `repro work` processes
                # pointed at the directory share the matrix.
                root = self._dir(state.campaign_id)
                fabric_submit(
                    root, request.systems, request.strategies, bus=self.bus
                )
                fabric_work(root)
                report = fabric_collect(root)
                with self._lock:
                    for job_id, result in report.results.items():
                        state.jobs[job_id] = {
                            "resumed": False,
                            "schedulable": result.schedulable,
                            "cost": result.cost,
                            "evaluations": result.evaluations,
                            "trace_points": len(result.trace),
                            "stop_reason": result.stop_reason,
                        }
            else:
                jobs = campaign_matrix(
                    request.systems, request.strategies, bus=self.bus
                )
                report = run_campaign(
                    request.systems,
                    jobs,
                    checkpoint_dir=self._checkpoint_dir(state.campaign_id),
                    progress=progress,
                )
        except Exception as exc:  # noqa: BLE001 - surfaced to clients
            with self._lock:
                state.status = "failed"
                state.error = f"{type(exc).__name__}: {exc}"
            return
        report_doc = {
            "results": {
                job_id: result_to_dict(result)
                for job_id, result in report.results.items()
            },
            "failures": {
                job_id: {
                    "kind": failure.kind,
                    "message": failure.message,
                    "attempts": failure.attempts,
                }
                for job_id, failure in report.failures.items()
            },
            "executed": list(report.executed),
            "resumed": list(report.resumed),
            "quarantined": list(report.quarantined),
            "elapsed_seconds": report.elapsed_seconds,
        }
        # Persist, then publish: the terminal report must be durable on
        # disk *before* clients can observe "done" -- a client is
        # allowed to DELETE a done campaign (rmtree of its directory),
        # so flipping the status first would race this writer against
        # the deleter's rmtree.
        with self._lock:
            state.report = report_doc
            terminal = state.snapshot()
        terminal["status"] = "done"
        path = self._result_path(state.campaign_id)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(terminal, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        with self._lock:
            state.status = "done"
        if self.on_done is not None:
            self.on_done(state.campaign_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, campaign_id: str) -> Dict[str, Any]:
        """Snapshot one campaign; raises 404 for unknown ids."""
        with self._lock:
            state = self._states.get(campaign_id)
            if state is None:
                raise ServiceError(
                    f"unknown campaign {campaign_id!r}", status=404
                )
            return state.snapshot()

    def delete(self, campaign_id: str) -> Dict[str, Any]:
        """Abandon a finished (or failed) campaign and erase its state.

        404 for unknown ids; 409 while the campaign is running -- a
        fabric-backed campaign may have external workers holding leases
        inside the directory, and even an in-process matrix has a
        daemon thread writing checkpoints there, so an in-flight
        directory is never pulled out from under its writers.  After
        deletion the content-addressed id is free again: re-submitting
        the same spec recreates the campaign from scratch.
        """
        with self._lock:
            state = self._states.get(campaign_id)
            if state is None:
                raise ServiceError(
                    f"unknown campaign {campaign_id!r}", status=404
                )
            if state.status == "running":
                raise ServiceError(
                    f"campaign {campaign_id!r} is running"
                    + (
                        " (fabric-backed: external workers may hold "
                        "leases in its directory)"
                        if self.fabric
                        else ""
                    )
                    + "; wait for it to finish before deleting",
                    status=409,
                )
            del self._states[campaign_id]
        shutil.rmtree(self._dir(campaign_id), ignore_errors=True)
        return {"campaign": campaign_id, "deleted": True}

    def stats(self) -> Dict[str, Any]:
        """Aggregate counts for ``/health``."""
        with self._lock:
            by_status: Dict[str, int] = {}
            for state in self._states.values():
                by_status[state.status] = by_status.get(state.status, 0) + 1
            return {"campaigns": len(self._states), "by_status": by_status}

    def running_count(self) -> int:
        with self._lock:
            return sum(
                1 for s in self._states.values() if s.status == "running"
            )
