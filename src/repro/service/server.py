"""The JSON/HTTP front of the analysis service (stdlib only).

``python -m repro serve`` stands up a
:class:`http.server.ThreadingHTTPServer` exposing the analysis and
search runtime:

========  ==================  ===========================================
method    path                behaviour
========  ==================  ===========================================
POST      ``/analyse``        analyse one (system, config) pair on the
                              warm evaluator pool; 422 on semantic
                              errors, 429 over the admission cap
POST      ``/campaigns``      submit a (system x strategy) matrix; runs
                              async on the campaign store, returns the
                              content-addressed campaign id (202, or
                              200 when the id already exists)
GET       ``/campaigns/<id>`` progress snapshot / terminal report
DELETE    ``/campaigns/<id>`` abandon a finished campaign and erase its
                              state (404 unknown, 409 while running --
                              notably fabric-backed campaigns whose
                              directory external workers may hold
                              leases in)
GET       ``/health``         liveness + pool, admission and campaign
                              accounting
POST      ``/shutdown``       graceful stop (the response is sent first)
========  ==================  ===========================================

Scaling model -- the three mechanisms the tests pin:

* **Warm pool** (:class:`~repro.service.pool.EvaluatorPool`): requests
  for the same system fingerprint share one resident
  :class:`~repro.core.search.Evaluator`; its result cache doubles as
  the shared cross-request result cache, and every response reports
  whether the request hit a warm evaluator and what it cost.
* **Admission control**: at most ``max_concurrent`` analyse requests
  are processed at once; requests beyond the cap are rejected
  *immediately* with 429 + ``Retry-After`` instead of queueing without
  bound (clients retry; no accepted work is ever dropped).  Campaign
  submissions are capped separately (``max_campaigns`` running).
* **Durability**: campaign state rides the checkpoint protocol
  (:mod:`repro.service.state`), so a killed server resumes in-flight
  campaigns on restart.
"""

from __future__ import annotations

import json
import logging
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.core.search import BusOptimisationOptions
from repro.errors import ReproError, ServiceError
from repro.io.serialization import envelope, error_to_dict
from repro.service.pool import EvaluatorPool
from repro.service.protocol import (
    analyse_response,
    guard_repro_error,
    parse_analyse_request,
    parse_campaign_request,
    runtime_bus_options,
)
from repro.service.state import CampaignStore

__all__ = ["AnalysisService", "ServiceConfig", "create_server", "serve"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one service process."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; the bound port is printed
    #: Directory holding campaign specs, checkpoints and reports; the
    #: resume-on-restart contract only holds when successive server
    #: processes share it.
    state_dir: str = "service-state"
    #: Analyse requests processed concurrently before 429s start.
    max_concurrent: int = 8
    #: Warm evaluators kept resident (LRU beyond this).
    pool_entries: int = 8
    #: Campaigns running at once before submissions get 429.
    max_campaigns: int = 4
    #: Evaluator options applied to campaign jobs (None = defaults).
    bus: Optional[BusOptimisationOptions] = None
    #: Run campaigns through the distributed fabric
    #: (:mod:`repro.core.fabric`): each campaign directory becomes a
    #: fabric that external ``repro work`` processes can join.
    fabric: bool = False


class AnalysisService:
    """Endpoint logic, shared by every handler thread."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.pool = EvaluatorPool(max_entries=config.pool_entries)
        self.store = CampaignStore(
            config.state_dir, bus=config.bus, fabric=config.fabric
        )
        self._gate = threading.Lock()
        self.active = 0
        self.peak_active = 0
        self.admitted = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _admit(self) -> bool:
        with self._gate:
            if self.active >= self.config.max_concurrent:
                self.rejected += 1
                return False
            self.active += 1
            self.admitted += 1
            self.peak_active = max(self.peak_active, self.active)
            return True

    def _release(self) -> None:
        with self._gate:
            self.active -= 1

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def analyse(self, body: Any) -> Tuple[int, Dict[str, Any]]:
        request = parse_analyse_request(body)
        if not self._admit():
            raise ServiceError(
                f"over capacity: {self.config.max_concurrent} analyse "
                f"request(s) already in flight; retry shortly",
                status=429,
            )
        try:
            with self.pool.lease(
                request.fingerprint,
                request.options_key(),
                request.system,
                runtime_bus_options(request.options),
            ) as lease:
                before = lease.evaluator.stats()
                try:
                    result = lease.evaluator.analyse(request.config)
                except ReproError as exc:
                    raise guard_repro_error(exc) from exc
                spent = lease.evaluator.stats().since(before)
            service = {
                "pool_hit": lease.hit,
                "evaluations": spent.evaluations,
                "cache_hits": spent.cache_hits,
                "cache_entries": spent.cache_entries,
            }
            return 200, analyse_response(request, result, service)
        finally:
            self._release()

    def submit_campaign(self, body: Any) -> Tuple[int, Dict[str, Any]]:
        request = parse_campaign_request(body)
        outcome = self.store.submit_guarded(
            request, self.config.max_campaigns
        )
        status = 202 if outcome["created"] else 200
        return status, envelope("campaign_accepted", outcome)

    def campaign_snapshot(self, campaign_id: str) -> Tuple[int, Dict[str, Any]]:
        return 200, envelope("campaign_status", self.store.get(campaign_id))

    def delete_campaign(self, campaign_id: str) -> Tuple[int, Dict[str, Any]]:
        return 200, envelope(
            "campaign_deleted", self.store.delete(campaign_id)
        )

    def health(self) -> Tuple[int, Dict[str, Any]]:
        with self._gate:
            admission = {
                "active": self.active,
                "peak_active": self.peak_active,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "max_concurrent": self.config.max_concurrent,
            }
        return 200, envelope(
            "health",
            {
                "status": "ok",
                "admission": admission,
                "pool": self.pool.stats(),
                "campaigns": self.store.stats(),
            },
        )

    def close(self) -> None:
        self.pool.close()


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the shared :class:`AnalysisService`."""

    server: "ServiceServer"

    # ------------------------------------------------------------------
    def _reply(self, status: int, payload: Dict[str, Any], **headers) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name.replace("_", "-"), str(value))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, exc: ServiceError) -> None:
        codes = {400: "bad-request", 404: "not-found", 409: "conflict",
                 422: "unprocessable", 429: "over-capacity"}
        code = codes.get(exc.status, "error")
        extra = {"Retry_After": "1"} if exc.status == 429 else {}
        self._reply(exc.status, error_to_dict(code, str(exc), exc.status), **extra)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError("request body is empty", status=400)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"body is not valid JSON: {exc}", status=400)

    def _dispatch(self, route) -> None:
        try:
            status, payload = route()
            self._reply(status, payload)
        except ServiceError as exc:
            self._error(exc)
        except ReproError as exc:
            self._error(guard_repro_error(exc))
        except Exception as exc:  # noqa: BLE001 - must answer, not hang
            logger.exception("unhandled service error")
            self._reply(
                500,
                error_to_dict(
                    "internal", f"{type(exc).__name__}: {exc}", 500
                ),
            )

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        path = self.path.rstrip("/") or "/"
        if path == "/health":
            self._dispatch(service.health)
        elif path.startswith("/campaigns/"):
            campaign_id = path[len("/campaigns/"):]
            self._dispatch(lambda: service.campaign_snapshot(campaign_id))
        else:
            self._error(ServiceError(f"no such endpoint GET {path}", 404))

    def do_DELETE(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        path = self.path.rstrip("/")
        if path.startswith("/campaigns/"):
            campaign_id = path[len("/campaigns/"):]
            self._dispatch(lambda: service.delete_campaign(campaign_id))
        else:
            self._error(ServiceError(f"no such endpoint DELETE {path}", 404))

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        path = self.path.rstrip("/")
        if path == "/analyse":
            self._dispatch(lambda: service.analyse(self._read_body()))
        elif path == "/campaigns":
            self._dispatch(lambda: service.submit_campaign(self._read_body()))
        elif path == "/shutdown":
            self._reply(200, envelope("shutdown", {"status": "stopping"}))
            threading.Thread(
                target=self.server.shutdown, name="service-shutdown"
            ).start()
        else:
            self._error(ServiceError(f"no such endpoint POST {path}", 404))

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s -- %s", self.address_string(), format % args)


class ServiceServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` owning one :class:`AnalysisService`."""

    daemon_threads = True  # a hard stop must not wait on handler threads

    def __init__(self, config: ServiceConfig):
        super().__init__((config.host, config.port), _Handler)
        self.service = AnalysisService(config)

    def server_close(self) -> None:  # release pooled evaluators too
        super().server_close()
        self.service.close()


def create_server(config: ServiceConfig) -> ServiceServer:
    """Build a server (bound, campaigns recovered, not yet serving).

    Recovery happens here -- before the first request -- so a client of
    a restarted server can immediately poll a campaign the previous
    process left in flight.
    """
    server = ServiceServer(config)
    recovered = server.service.store.recover()
    if recovered["resumed"]:
        logger.info(
            "resumed %d in-flight campaign(s): %s",
            len(recovered["resumed"]),
            ", ".join(recovered["resumed"]),
        )
    return server


def serve(config: ServiceConfig) -> int:
    """Blocking entry point of ``python -m repro serve``."""
    server = create_server(config)
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port} (state: {config.state_dir})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0
