"""JSON persistence for systems, bus configurations and optimiser results."""

from repro.io.serialization import (
    analysis_result_from_dict,
    analysis_result_to_dict,
    config_from_dict,
    config_to_dict,
    load_config,
    load_result,
    load_system,
    result_from_dict,
    result_to_dict,
    save_config,
    save_result,
    save_system,
    system_from_dict,
    system_to_dict,
)

__all__ = [
    "analysis_result_from_dict",
    "analysis_result_to_dict",
    "config_from_dict",
    "config_to_dict",
    "load_config",
    "load_result",
    "load_system",
    "result_from_dict",
    "result_to_dict",
    "save_config",
    "save_result",
    "save_system",
    "system_from_dict",
    "system_to_dict",
]
