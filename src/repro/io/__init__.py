"""JSON persistence for systems and bus configurations."""

from repro.io.serialization import (
    config_from_dict,
    config_to_dict,
    load_config,
    load_system,
    save_config,
    save_system,
    system_from_dict,
    system_to_dict,
)

__all__ = [
    "config_from_dict",
    "config_to_dict",
    "load_config",
    "load_system",
    "save_config",
    "save_system",
    "system_from_dict",
    "system_to_dict",
]
