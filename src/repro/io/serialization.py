"""JSON serialization of systems, configurations and analysis results.

Round-trips the full application model so benchmark inputs and optimiser
outputs can be stored, diffed and re-loaded.  The format is a plain
nested-dict schema with a version tag; unknown versions are rejected
rather than mis-parsed.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.core.config import FlexRayConfig
from repro.errors import SerializationError
from repro.model.application import Application
from repro.model.graph import TaskGraph
from repro.model.message import Message, MessageKind
from repro.model.system import System
from repro.model.task import SchedulingPolicy, Task

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def system_to_dict(system: System) -> Dict[str, Any]:
    """Encode a system as a JSON-compatible dict."""
    return {
        "version": FORMAT_VERSION,
        "nodes": list(system.nodes),
        "application": _application_to_dict(system.application),
    }


def _application_to_dict(app: Application) -> Dict[str, Any]:
    return {
        "name": app.name,
        "graphs": [_graph_to_dict(g) for g in app.graphs],
    }


def _graph_to_dict(graph: TaskGraph) -> Dict[str, Any]:
    return {
        "name": graph.name,
        "period": graph.period,
        "deadline": graph.deadline,
        "tasks": [_task_to_dict(t) for t in graph.tasks],
        "messages": [_message_to_dict(m) for m in graph.messages],
        "precedences": [list(p) for p in graph.precedences],
    }


def _task_to_dict(task: Task) -> Dict[str, Any]:
    return {
        "name": task.name,
        "wcet": task.wcet,
        "node": task.node,
        "policy": task.policy.value,
        "priority": task.priority,
        "release": task.release,
        "deadline": task.deadline,
    }


def _message_to_dict(message: Message) -> Dict[str, Any]:
    return {
        "name": message.name,
        "size": message.size,
        "sender": message.sender,
        "receivers": list(message.receivers),
        "kind": message.kind.value,
        "priority": message.priority,
        "deadline": message.deadline,
    }


def config_to_dict(config: FlexRayConfig) -> Dict[str, Any]:
    """Encode a bus configuration as a JSON-compatible dict."""
    return {
        "version": FORMAT_VERSION,
        "static_slots": list(config.static_slots),
        "gd_static_slot": config.gd_static_slot,
        "n_minislots": config.n_minislots,
        "frame_ids": dict(config.frame_ids),
        "gd_minislot": config.gd_minislot,
        "bits_per_mt": config.bits_per_mt,
        "frame_overhead_bytes": config.frame_overhead_bytes,
    }


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def system_from_dict(data: Dict[str, Any]) -> System:
    """Decode a system from :func:`system_to_dict` output."""
    _check_version(data)
    try:
        app_data = data["application"]
        graphs = tuple(_graph_from_dict(g) for g in app_data["graphs"])
        app = Application(app_data["name"], graphs)
        return System(tuple(data["nodes"]), app)
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed system document: {exc}") from exc


def _graph_from_dict(data: Dict[str, Any]) -> TaskGraph:
    return TaskGraph(
        name=data["name"],
        period=data["period"],
        deadline=data["deadline"],
        tasks=tuple(_task_from_dict(t) for t in data["tasks"]),
        messages=tuple(_message_from_dict(m) for m in data.get("messages", [])),
        precedences=tuple(
            (a, b) for a, b in data.get("precedences", [])
        ),
    )


def _task_from_dict(data: Dict[str, Any]) -> Task:
    return Task(
        name=data["name"],
        wcet=data["wcet"],
        node=data["node"],
        policy=SchedulingPolicy(data.get("policy", "SCS")),
        priority=data.get("priority", 0),
        release=data.get("release", 0),
        deadline=data.get("deadline"),
    )


def _message_from_dict(data: Dict[str, Any]) -> Message:
    return Message(
        name=data["name"],
        size=data["size"],
        sender=data["sender"],
        receivers=tuple(data["receivers"]),
        kind=MessageKind(data.get("kind", "DYN")),
        priority=data.get("priority", 0),
        deadline=data.get("deadline"),
    )


def config_from_dict(data: Dict[str, Any]) -> FlexRayConfig:
    """Decode a bus configuration from :func:`config_to_dict` output."""
    _check_version(data)
    try:
        return FlexRayConfig(
            static_slots=tuple(data["static_slots"]),
            gd_static_slot=data["gd_static_slot"],
            n_minislots=data["n_minislots"],
            frame_ids=dict(data.get("frame_ids", {})),
            gd_minislot=data.get("gd_minislot", 1),
            bits_per_mt=data.get("bits_per_mt", 8),
            frame_overhead_bytes=data.get("frame_overhead_bytes", 0),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed config document: {exc}") from exc


def _check_version(data: Dict[str, Any]) -> None:
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported document version {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )


# ----------------------------------------------------------------------
# file helpers
# ----------------------------------------------------------------------
def save_system(system: System, path: str) -> None:
    """Write a system to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(system_to_dict(system), fh, indent=2, sort_keys=True)


def load_system(path: str) -> System:
    """Read a system from a JSON file."""
    with open(path, encoding="utf-8") as fh:
        return system_from_dict(json.load(fh))


def save_config(config: FlexRayConfig, path: str) -> None:
    """Write a bus configuration to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(config_to_dict(config), fh, indent=2, sort_keys=True)


def load_config(path: str) -> FlexRayConfig:
    """Read a bus configuration from a JSON file."""
    with open(path, encoding="utf-8") as fh:
        return config_from_dict(json.load(fh))
