"""JSON serialization of systems, configurations and optimiser results.

Round-trips the full application model so benchmark inputs and optimiser
outputs can be stored, diffed and re-loaded.  The format is a plain
nested-dict schema with a version tag; unknown versions are rejected
rather than mis-parsed.

Optimisation results (:func:`result_to_dict` / :func:`load_result`)
carry their own ``result_schema`` version on top of the document
version: the campaign layer (:mod:`repro.core.campaign`) persists every
job outcome through this schema, so checkpoints written by one code
generation are either readable by the next or rejected loudly.  Two
deliberate lossy choices, both recorded in the schema notes below:

* the schedule table of the best configuration is *not* persisted (it
  is cheap to rebuild by re-analysing the stored configuration);
* infinite costs (unschedulable / infeasible points) are written as
  JSON ``Infinity``, which Python's :mod:`json` reads back natively --
  the same convention the Fig. 9 benchmark artifacts already use.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, List, Optional

from repro.analysis.holistic import AnalysisOptions, AnalysisResult
from repro.core.config import FlexRayConfig
from repro.core.cost import CostBreakdown
from repro.core.result import OptimisationResult, SearchPoint
from repro.errors import SerializationError
from repro.model.application import Application
from repro.model.graph import TaskGraph
from repro.model.message import Message, MessageKind
from repro.model.system import System
from repro.model.task import SchedulingPolicy, Task

FORMAT_VERSION = 1

#: Version of the :class:`OptimisationResult` JSON schema.  Bump when
#: the result/trace encoding changes shape; ``result_from_dict`` rejects
#: documents written by other schema generations.
RESULT_FORMAT_VERSION = 1

#: Version of the service request/response envelope schema
#: (:func:`envelope` / :func:`parse_envelope`).  Bump when the wire
#: shape of the analysis service changes; mismatched envelopes are
#: rejected rather than mis-parsed, exactly like document versions.
SERVICE_FORMAT_VERSION = 1

#: The :class:`~repro.analysis.holistic.AnalysisOptions` fields the
#: service protocol exposes.  Deliberately a subset: the remaining
#: knobs (warm start, dominance, caps) are certified bit-identical to
#: their defaults, so a network API that accepted them would only
#: offer ways to get the same answers slower.
ANALYSIS_OPTION_FIELDS = ("backend", "fault_hypothesis")


#: Field order of one encoded search-trace point (kept compact because
#: OBC/EE traces reach thousands of points per campaign job).
TRACE_FIELDS = (
    "n_static_slots",
    "gd_static_slot",
    "n_minislots",
    "cost",
    "schedulable",
    "exact",
)


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def system_to_dict(system: System) -> Dict[str, Any]:
    """Encode a system as a JSON-compatible dict."""
    return {
        "version": FORMAT_VERSION,
        "nodes": list(system.nodes),
        "application": _application_to_dict(system.application),
    }


def _application_to_dict(app: Application) -> Dict[str, Any]:
    return {
        "name": app.name,
        "graphs": [_graph_to_dict(g) for g in app.graphs],
    }


def _graph_to_dict(graph: TaskGraph) -> Dict[str, Any]:
    return {
        "name": graph.name,
        "period": graph.period,
        "deadline": graph.deadline,
        "tasks": [_task_to_dict(t) for t in graph.tasks],
        "messages": [_message_to_dict(m) for m in graph.messages],
        "precedences": [list(p) for p in graph.precedences],
    }


def _task_to_dict(task: Task) -> Dict[str, Any]:
    return {
        "name": task.name,
        "wcet": task.wcet,
        "node": task.node,
        "policy": task.policy.value,
        "priority": task.priority,
        "release": task.release,
        "deadline": task.deadline,
    }


def _message_to_dict(message: Message) -> Dict[str, Any]:
    return {
        "name": message.name,
        "size": message.size,
        "sender": message.sender,
        "receivers": list(message.receivers),
        "kind": message.kind.value,
        "priority": message.priority,
        "deadline": message.deadline,
    }


def config_to_dict(config: FlexRayConfig) -> Dict[str, Any]:
    """Encode a bus configuration as a JSON-compatible dict."""
    return {
        "version": FORMAT_VERSION,
        "static_slots": list(config.static_slots),
        "gd_static_slot": config.gd_static_slot,
        "n_minislots": config.n_minislots,
        "frame_ids": dict(config.frame_ids),
        "gd_minislot": config.gd_minislot,
        "bits_per_mt": config.bits_per_mt,
        "frame_overhead_bytes": config.frame_overhead_bytes,
    }


def search_point_to_list(point: SearchPoint) -> List[Any]:
    """Encode one trace point as a compact array (see ``TRACE_FIELDS``)."""
    return [
        point.n_static_slots,
        point.gd_static_slot,
        point.n_minislots,
        point.cost,
        point.schedulable,
        point.exact,
    ]


def _cost_to_dict(cost: CostBreakdown) -> Dict[str, Any]:
    return {
        "value": cost.value,
        "schedulable": cost.schedulable,
        "misses": cost.misses,
        "worst_violation": cost.worst_violation,
        "total_slack": cost.total_slack,
    }


def analysis_result_to_dict(result: AnalysisResult) -> Dict[str, Any]:
    """Encode an analysis outcome (without its schedule table)."""
    return {
        "config": config_to_dict(result.config),
        "feasible": result.feasible,
        "schedulable": result.schedulable,
        "converged": result.converged,
        "cost": None if result.cost is None else _cost_to_dict(result.cost),
        "wcrt": dict(result.wcrt),
        "failure": result.failure,
    }


def result_to_dict(result: OptimisationResult) -> Dict[str, Any]:
    """Encode an optimiser run outcome, trace included.

    The schedule table of the best configuration is dropped: rebuilding
    it is one ``analyse_system`` call on the stored configuration,
    while persisting it would dominate every checkpoint file.
    """
    return {
        "version": FORMAT_VERSION,
        "kind": "optimisation_result",
        "result_schema": RESULT_FORMAT_VERSION,
        "algorithm": result.algorithm,
        "evaluations": result.evaluations,
        "cache_hits": result.cache_hits,
        "elapsed_seconds": result.elapsed_seconds,
        "stop_reason": result.stop_reason,
        "best": (
            None if result.best is None else analysis_result_to_dict(result.best)
        ),
        "trace_fields": list(TRACE_FIELDS),
        "trace": [search_point_to_list(p) for p in result.trace],
    }


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def system_from_dict(data: Dict[str, Any]) -> System:
    """Decode a system from :func:`system_to_dict` output."""
    _check_version(data)
    try:
        app_data = data["application"]
        graphs = tuple(_graph_from_dict(g) for g in app_data["graphs"])
        app = Application(app_data["name"], graphs)
        return System(tuple(data["nodes"]), app)
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed system document: {exc}") from exc


def _graph_from_dict(data: Dict[str, Any]) -> TaskGraph:
    return TaskGraph(
        name=data["name"],
        period=data["period"],
        deadline=data["deadline"],
        tasks=tuple(_task_from_dict(t) for t in data["tasks"]),
        messages=tuple(_message_from_dict(m) for m in data.get("messages", [])),
        precedences=tuple(
            (a, b) for a, b in data.get("precedences", [])
        ),
    )


def _task_from_dict(data: Dict[str, Any]) -> Task:
    return Task(
        name=data["name"],
        wcet=data["wcet"],
        node=data["node"],
        policy=SchedulingPolicy(data.get("policy", "SCS")),
        priority=data.get("priority", 0),
        release=data.get("release", 0),
        deadline=data.get("deadline"),
    )


def _message_from_dict(data: Dict[str, Any]) -> Message:
    return Message(
        name=data["name"],
        size=data["size"],
        sender=data["sender"],
        receivers=tuple(data["receivers"]),
        kind=MessageKind(data.get("kind", "DYN")),
        priority=data.get("priority", 0),
        deadline=data.get("deadline"),
    )


def config_from_dict(data: Dict[str, Any]) -> FlexRayConfig:
    """Decode a bus configuration from :func:`config_to_dict` output."""
    _check_version(data)
    try:
        return FlexRayConfig(
            static_slots=tuple(data["static_slots"]),
            gd_static_slot=data["gd_static_slot"],
            n_minislots=data["n_minislots"],
            frame_ids=dict(data.get("frame_ids", {})),
            gd_minislot=data.get("gd_minislot", 1),
            bits_per_mt=data.get("bits_per_mt", 8),
            frame_overhead_bytes=data.get("frame_overhead_bytes", 0),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed config document: {exc}") from exc


def search_point_from_list(data: List[Any]) -> SearchPoint:
    """Decode one trace point written by :func:`search_point_to_list`."""
    try:
        ns, gss, nm, cost, schedulable, exact = data
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"malformed trace point {data!r}") from exc
    return SearchPoint(
        n_static_slots=ns,
        gd_static_slot=gss,
        n_minislots=nm,
        cost=cost,
        schedulable=schedulable,
        exact=exact,
    )


def _cost_from_dict(data: Dict[str, Any]) -> CostBreakdown:
    return CostBreakdown(
        value=data["value"],
        schedulable=data["schedulable"],
        misses=data["misses"],
        worst_violation=data["worst_violation"],
        total_slack=data["total_slack"],
    )


def analysis_result_from_dict(data: Dict[str, Any]) -> AnalysisResult:
    """Decode :func:`analysis_result_to_dict` output (``table`` is None)."""
    try:
        cost = data["cost"]
        return AnalysisResult(
            config=config_from_dict(data["config"]),
            feasible=data["feasible"],
            schedulable=data["schedulable"],
            converged=data["converged"],
            cost=None if cost is None else _cost_from_dict(cost),
            wcrt=dict(data["wcrt"]),
            table=None,
            failure=data.get("failure"),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(
            f"malformed analysis result document: {exc}"
        ) from exc


def result_from_dict(data: Dict[str, Any]) -> OptimisationResult:
    """Decode an optimiser run outcome from :func:`result_to_dict` output."""
    _check_version(data)
    if data.get("kind") != "optimisation_result":
        raise SerializationError(
            f"not an optimisation result document (kind={data.get('kind')!r})"
        )
    schema = data.get("result_schema")
    if schema != RESULT_FORMAT_VERSION:
        raise SerializationError(
            f"unsupported result schema {schema!r} "
            f"(this library reads schema {RESULT_FORMAT_VERSION})"
        )
    try:
        best = data["best"]
        return OptimisationResult(
            algorithm=data["algorithm"],
            best=None if best is None else analysis_result_from_dict(best),
            evaluations=data["evaluations"],
            elapsed_seconds=data["elapsed_seconds"],
            trace=tuple(search_point_from_list(p) for p in data["trace"]),
            cache_hits=data.get("cache_hits", 0),
            stop_reason=data.get("stop_reason"),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed result document: {exc}") from exc


def _check_version(data: Dict[str, Any]) -> None:
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported document version {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )


# ----------------------------------------------------------------------
# file helpers
# ----------------------------------------------------------------------
def save_system(system: System, path: str) -> None:
    """Write a system to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(system_to_dict(system), fh, indent=2, sort_keys=True)


def load_system(path: str) -> System:
    """Read a system from a JSON file."""
    with open(path, encoding="utf-8") as fh:
        return system_from_dict(json.load(fh))


def save_config(config: FlexRayConfig, path: str) -> None:
    """Write a bus configuration to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(config_to_dict(config), fh, indent=2, sort_keys=True)


def load_config(path: str) -> FlexRayConfig:
    """Read a bus configuration from a JSON file."""
    with open(path, encoding="utf-8") as fh:
        return config_from_dict(json.load(fh))


def save_result(result: OptimisationResult, path: str) -> None:
    """Write an optimisation result (trace included) to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result_to_dict(result), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_result(path: str) -> OptimisationResult:
    """Read an optimisation result from a JSON file."""
    with open(path, encoding="utf-8") as fh:
        return result_from_dict(json.load(fh))


# ----------------------------------------------------------------------
# service envelopes (the JSON/HTTP layer of repro.service)
# ----------------------------------------------------------------------
def system_fingerprint(system: System) -> str:
    """Deterministic digest of a system's full serialized content.

    The identity key of the service layer's warm evaluator pool and of
    the campaign checkpoint protocol: two systems share a fingerprint
    exactly when their :func:`system_to_dict` documents are equal.
    """
    doc = json.dumps(system_to_dict(system), sort_keys=True)
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]


def envelope(kind: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap *payload* in a versioned service envelope.

    Every request and response body of the analysis service is one of
    these: ``{"service_version": N, "kind": ..., <payload>}``.  The
    payload keys are inlined (not nested) so hand-written client
    requests stay flat.
    """
    doc = {"service_version": SERVICE_FORMAT_VERSION, "kind": kind}
    doc.update(payload)
    return doc


def parse_envelope(data: Any, expected_kind: str) -> Dict[str, Any]:
    """Validate a service envelope and return it; raises on mismatch.

    A missing ``service_version`` is accepted (hand-written requests
    may omit it and get the current schema); a *wrong* one is rejected
    loudly, as is a body that is not a JSON object or carries a
    different ``kind`` than the endpoint expects.
    """
    if not isinstance(data, dict):
        raise SerializationError(
            f"service body must be a JSON object, got {type(data).__name__}"
        )
    version = data.get("service_version", SERVICE_FORMAT_VERSION)
    if version != SERVICE_FORMAT_VERSION:
        raise SerializationError(
            f"unsupported service envelope version {version!r} "
            f"(this service speaks version {SERVICE_FORMAT_VERSION})"
        )
    kind = data.get("kind", expected_kind)
    if kind != expected_kind:
        raise SerializationError(
            f"expected a {expected_kind!r} body, got kind={kind!r}"
        )
    return data


def error_to_dict(code: str, message: str, status: int = 400) -> Dict[str, Any]:
    """The one error shape every service endpoint answers with.

    ``code`` is a stable machine-readable slug (``"bad-request"``,
    ``"over-capacity"``, ``"not-found"``...), ``message`` the human
    explanation, ``status`` the HTTP status the transport used.
    """
    return envelope(
        "error", {"error": {"code": code, "message": message, "status": status}}
    )


def analysis_options_to_dict(options: AnalysisOptions) -> Dict[str, Any]:
    """Encode the service-facing subset of analysis options."""
    return {
        field: getattr(options, field) for field in ANALYSIS_OPTION_FIELDS
    }


def analysis_options_from_dict(
    data: Optional[Dict[str, Any]]
) -> AnalysisOptions:
    """Decode analysis options from a service request (``None`` = defaults).

    Unknown keys are rejected rather than ignored: a client asking for
    an option this schema does not carry should learn so from the
    error, not from silently-default behaviour.
    """
    if data is None:
        return AnalysisOptions()
    if not isinstance(data, dict):
        raise SerializationError(
            f"analysis options must be a JSON object, got {type(data).__name__}"
        )
    unknown = set(data) - set(ANALYSIS_OPTION_FIELDS)
    if unknown:
        raise SerializationError(
            f"unknown analysis option(s) {sorted(unknown)}; "
            f"this schema carries {list(ANALYSIS_OPTION_FIELDS)}"
        )
    return AnalysisOptions(**data)


# ----------------------------------------------------------------------
# evaluator options (the fabric manifest's campaign-wide bus preset)
# ----------------------------------------------------------------------
def _dataclass_scalars(options, *, skip=()) -> Dict[str, Any]:
    """Every scalar dataclass field of *options* as a JSON-safe dict."""
    doc: Dict[str, Any] = {}
    for f in dataclasses.fields(options):
        if f.name in skip:
            continue
        value = getattr(options, f.name)
        if not isinstance(value, (int, float, str, bool, type(None))):
            raise SerializationError(
                f"option field {f.name!r} of {type(options).__name__} is "
                f"not JSON-scalar ({type(value).__name__}); it cannot ride "
                f"a fabric manifest"
            )
        doc[f.name] = value
    return doc


def _dataclass_from_scalars(cls, data: Dict[str, Any], *, skip=(), **fixed):
    """Inverse of :func:`_dataclass_scalars`; rejects unknown keys."""
    legal = {f.name for f in dataclasses.fields(cls)} - set(skip)
    unknown = set(data) - legal
    if unknown:
        raise SerializationError(
            f"unknown {cls.__name__} field(s) {sorted(unknown)}; "
            f"this schema carries {sorted(legal)}"
        )
    try:
        return cls(**data, **fixed)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"bad {cls.__name__} document: {exc}") from exc


def strategy_options_to_fields(options) -> Dict[str, Any]:
    """Encode a strategy option record as wire-format entry fields.

    The inverse direction of the service/fabric strategy-entry schema
    (``{"name": ..., <option fields>}``, see
    :func:`repro.service.protocol.parse_campaign_request`): every
    dataclass field except ``bus`` -- evaluator options travel once per
    campaign, not per strategy entry -- as JSON scalars.
    """
    return _dataclass_scalars(options, skip=("bus",))


def bus_options_to_dict(options) -> Dict[str, Any]:
    """Encode a full :class:`~repro.core.search.BusOptimisationOptions`.

    Unlike :func:`analysis_options_to_dict` (the deliberately narrow
    client-facing schema), this codec round-trips *every* knob --
    including the nested analysis and schedule records -- because the
    distributed fabric (:mod:`repro.core.fabric`) must hand a worker
    process the exact evaluator preset the coordinator ran with.
    """
    doc = _dataclass_scalars(options, skip=("analysis",))
    analysis = _dataclass_scalars(options.analysis, skip=("schedule",))
    analysis["schedule"] = _dataclass_scalars(options.analysis.schedule)
    doc["analysis"] = analysis
    return doc


def bus_options_from_dict(data: Optional[Dict[str, Any]]):
    """Decode :func:`bus_options_to_dict` output (``None`` = ``None``).

    ``None`` stays ``None`` (strategy options treat an absent bus record
    as "library defaults"), mirroring
    :meth:`repro.core.strategies.StrategyOptions.bus_options`.
    """
    from repro.analysis.scheduler import ScheduleOptions
    from repro.core.search import BusOptimisationOptions

    if data is None:
        return None
    if not isinstance(data, dict):
        raise SerializationError(
            f"bus options must be a JSON object, got {type(data).__name__}"
        )
    doc = dict(data)
    analysis_doc = doc.pop("analysis", None) or {}
    if not isinstance(analysis_doc, dict):
        raise SerializationError("'analysis' must be a JSON object")
    analysis_doc = dict(analysis_doc)
    schedule = _dataclass_from_scalars(
        ScheduleOptions, analysis_doc.pop("schedule", None) or {}
    )
    analysis = _dataclass_from_scalars(
        AnalysisOptions, analysis_doc, skip=("schedule",), schedule=schedule
    )
    return _dataclass_from_scalars(
        BusOptimisationOptions, doc, skip=("analysis",), analysis=analysis
    )
